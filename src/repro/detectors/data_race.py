"""Lockset-based static data-race detector (the paper's §7.2 next step).

The paper's own tooling stops at deadlocks and leaves non-deadlock
concurrency bugs — which §5 shows are dominated by shared-memory data
races through `Arc` + interior mutability — to future work.  This
detector is that next step, in the Eraser/RacerD lockset tradition:

1. **Thread-escape analysis** (:mod:`repro.analysis.escape`) finds every
   ``thread::spawn`` site, the closure it runs, and the map from closure
   captures back to spawner locals, so closure-side accesses and
   spawner-side accesses meet on the same global location ids (heap
   allocation sites, statics).
2. **Lockset dataflow** comes from the ``shared_accesses`` component of
   :class:`~repro.analysis.summaries.FunctionSummary`: every deref
   access in a function's call tree, keyed with the locks held at the
   access (composed bottom-up in the SCC fixpoint, so protection routed
   through helper functions is seen).
3. **Reporting** pairs conflicting accesses — same location, at least
   one write, both sides able to run concurrently, and no common lock
   whose two acquisitions mutually exclude — into findings carrying
   thread-escape, lockset, and summary-chain provenance.

Two access pools are paired:

* the **threaded pool** — per spawn site, the spawned closure's summary
  accesses, with ``("arg", capture, proj)`` locations and locks
  translated through the capture map into the spawner's global ids;
* the **spawner pool** — accesses the spawning function performs (itself
  or via callees) at points forward-reachable from a spawn, i.e. while
  the spawned thread may be running.

Known imprecision (see DESIGN.md): guard-deref accesses (``*guard += 1``)
are invisible (their protection is structural, so this loses no races it
could have found); a single spawn site in a loop is one "thread" (missed
T×T self-races); ``join()`` introduces no happens-before (post-join
accesses still pair — matching the dynamic monitor's approximation);
callee locks the caller cannot name become opaque lockset entries that
never match (a deliberate FP source, never an FN source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import obs
from repro.analysis.escape import SpawnSite, translate_capture
from repro.analysis.lifetime import caller_lock_ids, lock_identity
from repro.analysis.summaries import (
    deref_access_sites, opaque_lock, translate_access_loc,
)
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.mir.nodes import Body, TerminatorKind
from repro.obs.provenance import fact


def _mutually_exclude(first: str, second: str) -> bool:
    """Do two acquisitions of the *same* lock exclude each other?  Two
    read-side acquisitions run concurrently, so they protect nothing."""
    if first in ("read", "borrow") and second in ("read", "borrow"):
        return False
    return True


def _proj_overlap(a: Tuple, b: Tuple) -> bool:
    """Field-sensitive may-overlap: one projection path prefixes the
    other (``x.f`` overlaps ``x`` and ``x.f.g``, never ``x.g``)."""
    return a[:len(b)] == b or b[:len(a)] == a


def _render_loc(loc: Tuple) -> str:
    kind, payload, proj = loc
    base = f"allocation at `{payload}`" if kind == "heap" \
        else f"static `{payload}`"
    if proj:
        return f"{base} field `{'.'.join(proj)}`"
    return base


def _render_locks(locks: FrozenSet) -> str:
    if not locks:
        return "{}"
    names = []
    for lk in sorted(locks, key=repr):
        if lk[0] == "opaque":
            names.append(f"opaque({lk[1]})")
        else:
            proj = ".".join(lk[2]) if lk[2] else ""
            names.append(f"{lk[3]}:{lk[0]}({lk[1]}{'.' + proj if proj else ''})")
    return "{" + ", ".join(names) + "}"


@dataclass
class _Access:
    """One shared-memory access, normalised to global location ids."""

    fn_key: str                     # function whose summary produced it
    key: Tuple                      # AccessKey in that function's coords
    loc: Tuple                      # global location (kind, payload, proj)
    write: bool
    locks: FrozenSet                # lock ids in global/opaque coords
    span: object
    site: Optional[SpawnSite]       # the spawn site (threaded pool only)
    #: For accesses composed from a callee summary at a call site: the
    #: calling function, so the reported summary chain starts there.
    caller: Optional[str] = None

    def thread(self) -> str:
        if self.site is None:
            return "spawning thread"
        return f"thread spawned at `{self.site.spawner}` " \
               f"block {self.site.block}"


class DataRaceDetector(Detector):
    name = "data-race"
    description = ("Unsynchronised conflicting accesses to thread-shared "
                   "memory (Eraser-style lockset analysis over spawn "
                   "escapes)")
    paper_section = "7.2"

    def check_program(self, ctx: AnalysisContext) -> List[Finding]:
        te = ctx.thread_escape()
        if not te.spawn_sites:
            return []
        threaded = self._threaded_accesses(ctx, te)
        spawner_side = self._spawner_accesses(ctx, te)
        obs.gauge("detector.data_race.threaded_accesses", len(threaded))
        obs.gauge("detector.data_race.spawner_accesses", len(spawner_side))
        return self._pair(ctx, threaded, spawner_side)

    # -- access pools -------------------------------------------------------

    def _threaded_accesses(self, ctx: AnalysisContext,
                           te) -> List[_Access]:
        """Closure-summary accesses per spawn site, translated through the
        capture map into the spawner frame's global location ids."""
        out: List[_Access] = []
        for site in te.spawn_sites:
            spawner = ctx.program.functions.get(site.spawner)
            closure_summary = ctx.summary(site.closure)
            if spawner is None or not closure_summary.shared_accesses:
                continue
            pt = ctx.points_to(spawner)
            for access, (_hop, span) in \
                    closure_summary.shared_accesses.items():
                loc, write, lockset = access
                if loc[0] == "arg":
                    targets = translate_capture(site, pt, loc[1], loc[2])
                elif loc[0] in ("heap", "static"):
                    targets = {loc}
                else:
                    targets = set()
                if not targets:
                    continue
                locks = self._capture_locks(site, pt, lockset)
                for target in sorted(targets):
                    out.append(_Access(fn_key=site.closure, key=access,
                                       loc=target, write=write,
                                       locks=locks, span=span, site=site))
        return out

    def _capture_locks(self, site: SpawnSite, pt_spawner,
                       lockset: FrozenSet) -> FrozenSet:
        locks: Set[Tuple] = set()
        for lk in lockset:
            if lk[0] in ("heap", "static", "opaque"):
                locks.add(lk)
                continue
            if lk[0] == "arg":
                ids = translate_capture(site, pt_spawner, lk[1], lk[2])
                if ids:
                    locks |= {ident + (lk[3],) for ident in ids}
                    continue
            # A lock the spawner frame cannot name still protects the
            # access — keep it, unmatchable, rather than dropping it.
            locks.add(opaque_lock(site.closure, lk))
        return frozenset(locks)

    def _spawner_accesses(self, ctx: AnalysisContext,
                          te) -> List[_Access]:
        """Accesses the spawning function performs while a spawned thread
        may be running: deref accesses and calls at points forward-
        reachable from a spawn site, with locations resolved to global
        ids and locksets from the covering guard regions."""
        out: List[_Access] = []
        by_body: Dict[str, List[SpawnSite]] = {}
        for site in te.spawn_sites:
            by_body.setdefault(site.spawner, []).append(site)
        for key, sites in sorted(by_body.items()):
            if key in te.thread_reachable:
                # The spawner itself runs on a spawned thread; its own
                # accesses are already in the threaded pool via whatever
                # site spawned it.
                continue
            body = ctx.program.functions.get(key)
            if body is None:
                continue
            after = self._blocks_after(body, {s.block for s in sites})
            if not after:
                continue
            pt = ctx.points_to(body)
            regions = ctx.guard_regions(body, include_try=True)

            def locks_at(point) -> FrozenSet:
                held = set()
                for region in regions:
                    if region.covers(point):
                        held |= {ident + (region.kind,)
                                 for ident in region.lock_ids
                                 if ident[0] in ("heap", "static")}
                return frozenset(held)

            for point, base, proj, write, span in deref_access_sites(body):
                if point[0] not in after:
                    continue
                locs = self._global_locs(body, pt, base, proj)
                lockset = locks_at(point)
                for loc in sorted(locs):
                    out.append(_Access(fn_key=key,
                                       key=(loc, write, lockset), loc=loc,
                                       write=write, locks=lockset,
                                       span=span, site=None))
            out.extend(self._composed_accesses(ctx, body, pt, after,
                                               locks_at))
        return out

    def _composed_accesses(self, ctx: AnalysisContext, body: Body, pt,
                           after: Set[int], locks_at) -> List[_Access]:
        """Callee summary accesses at call sites that run after a spawn,
        translated into global ids, with the caller's locks added."""
        out: List[_Access] = []
        for bb, term in body.iter_terminators():
            if bb not in after or term.kind is not TerminatorKind.CALL \
                    or term.func is None:
                continue
            func = term.func
            if func.kind not in (FuncKind.USER, FuncKind.CLOSURE) \
                    or func.builtin_op is BuiltinOp.THREAD_SPAWN:
                continue
            callee = func.user_fn
            summary = ctx.summary(callee)
            if not summary.shared_accesses:
                continue
            here = locks_at((bb, len(body.blocks[bb].statements)))
            for access in summary.shared_accesses:
                loc, write, lockset = access
                targets: Set[Tuple] = set()
                if loc[0] in ("heap", "static"):
                    targets.add(loc)
                elif loc[0] == "arg" and loc[1] < len(term.args) \
                        and term.args[loc[1]].place is not None:
                    arg_local = term.args[loc[1]].place.local
                    targets |= {
                        (ident[0], ident[1],
                         tuple(ident[2]) + tuple(loc[2]))
                        for ident in lock_identity(body, pt, arg_local)
                        if ident[0] in ("heap", "static")}
                if not targets:
                    continue
                locks = set(here)
                for lk in lockset:
                    if lk[0] in ("heap", "static", "opaque"):
                        locks.add(lk)
                        continue
                    kept = set()
                    if lk[0] == "arg":
                        kept = {
                            ident + (lk[3],)
                            for ident in caller_lock_ids(body, pt, term, lk)
                            if ident[0] in ("heap", "static")}
                    if kept:
                        locks |= kept
                    else:
                        locks.add(opaque_lock(callee, lk))
                for target in sorted(targets):
                    out.append(_Access(fn_key=callee, key=access,
                                       loc=target, write=write,
                                       locks=frozenset(locks),
                                       span=term.span, site=None,
                                       caller=body.key))
        return out

    @staticmethod
    def _global_locs(body: Body, pt, base: int, proj: Tuple) -> Set[Tuple]:
        locs: Set[Tuple] = set()
        name = body.locals[base].name or ""
        if name.startswith("static:"):
            locs.add(("static", name[7:], proj))
        for target in pt.targets(base):
            if target[0] in ("heap", "static"):
                locs.add((target[0], target[1], proj))
        return locs

    @staticmethod
    def _blocks_after(body: Body, spawn_blocks: Set[int]) -> Set[int]:
        """Blocks forward-reachable from any spawn terminator — the
        points at which a spawned thread may already be running."""
        work = []
        for bb in spawn_blocks:
            term = body.blocks[bb].terminator
            if term is not None:
                work.extend(term.successors())
        seen: Set[int] = set()
        while work:
            bb = work.pop()
            if bb in seen:
                continue
            seen.add(bb)
            term = body.blocks[bb].terminator
            if term is not None:
                work.extend(term.successors())
        return seen

    # -- pairing ------------------------------------------------------------

    def _pair(self, ctx: AnalysisContext, threaded: List[_Access],
              spawner_side: List[_Access]) -> List[Finding]:
        findings: List[Finding] = []
        reported: Set[Tuple] = set()
        # Writes first, so the reported representative of a read+write
        # statement pair (same span, same dedup key) is the write.
        threaded = sorted(threaded, key=lambda acc: not acc.write)
        spawner_side = sorted(spawner_side, key=lambda acc: not acc.write)
        for i, a in enumerate(threaded):
            others = threaded[i + 1:] + spawner_side
            for b in others:
                if b.site is not None and b.site is a.site:
                    continue     # same spawn site = same thread (one spawn)
                if a.loc[0] != b.loc[0] or a.loc[1] != b.loc[1] \
                        or not _proj_overlap(a.loc[2], b.loc[2]):
                    continue
                if not (a.write or b.write):
                    continue
                if self._protected(a.locks, b.locks):
                    obs.count("detector.data_race.lockset_protected")
                    continue
                dedup = (a.loc[0], a.loc[1],
                         frozenset({(a.fn_key, a.span.lo),
                                    (b.fn_key, b.span.lo)}))
                if dedup in reported:
                    continue
                reported.add(dedup)
                findings.append(self._finding(ctx, a, b))
        obs.count("detector.data_race.pairs_reported", len(findings))
        return findings

    @staticmethod
    def _protected(first: FrozenSet, second: FrozenSet) -> bool:
        for la in first:
            if la[0] == "opaque":
                continue
            for lb in second:
                if lb[0] == "opaque":
                    continue
                if la[:3] == lb[:3] and _mutually_exclude(la[3], lb[3]):
                    return True
        return False

    def _finding(self, ctx: AnalysisContext, a: _Access,
                 b: _Access) -> Finding:
        loc_desc = _render_loc(a.loc)
        what_a = "write" if a.write else "read"
        what_b = "write" if b.write else "read"
        chain_a = ctx.access_chain(a.fn_key, a.key)
        chain_b = ctx.access_chain(b.fn_key, b.key)
        if b.caller is not None:
            chain_b = [b.caller] + chain_b
        provenance = [
            fact("thread-escape",
                 f"thread-escape analysis: `{a.fn_key}` runs on the "
                 f"{a.thread()}; the shared location flows in through a "
                 f"spawn capture",
                 spawner=a.site.spawner if a.site else None,
                 closure=a.site.closure if a.site else None,
                 spawn_block=a.site.block if a.site else None),
            fact("shared-location",
                 f"points-to analysis: both sides reach the {loc_desc}",
                 location=a.loc),
            fact("lockset",
                 f"lockset analysis: the {what_a} in `{a.fn_key}` holds "
                 f"{_render_locks(a.locks)}; the {what_b} in `{b.fn_key}` "
                 f"holds {_render_locks(b.locks)} — no common lock "
                 f"excludes them",
                 first=sorted(a.locks, key=repr),
                 second=sorted(b.locks, key=repr)),
            fact("summary-chain",
                 f"summary engine: the {what_a} reaches the location "
                 f"along {' → '.join(chain_a)}; the {what_b} along "
                 f"{' → '.join(chain_b)}",
                 chain=chain_a, other_chain=chain_b),
        ]
        return Finding(
            detector=self.name, kind="data-race",
            message=(f"data race on the {loc_desc}: {what_a} in "
                     f"`{a.fn_key}` (on the {a.thread()}) and {what_b} in "
                     f"`{b.fn_key}` (on the {b.thread()}) with no common "
                     f"lock"),
            fn_key=a.fn_key, span=a.span, severity=Severity.ERROR,
            metadata={"location": a.loc, "first_fn": a.fn_key,
                      "second_fn": b.fn_key, "first_write": a.write,
                      "second_write": b.write,
                      "interprocedural": len(chain_a) > 1
                      or len(chain_b) > 1},
            provenance=provenance)
