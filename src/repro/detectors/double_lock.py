"""Double-lock detector (the paper's second detector, §7.2).

Construction follows the paper: "It first identifies all call sites of
lock() and extracts [...] the lock being acquired and the variable being
used to save the return value.  As Rust implicitly releases the lock when
the lifetime of this variable ends, our tool will record this release
time.  We then check whether or not the same lock is acquired before this
time [...].  Our check covers the case where two lock acquisitions are in
different functions by performing inter-procedural analysis."

The guard region (acquisition → implicit/explicit release) comes from
:func:`repro.analysis.lifetime.compute_guard_regions`; re-acquisition is
checked both intra-procedurally (another acquisition terminator inside the
region whose lock identity may-aliases) and inter-procedurally (a call
inside the region to a function whose lock summary includes the same
lock).  ``try_lock`` variants never block, so they are excluded, and two
``read()`` acquisitions of an ``RwLock`` are allowed.
"""

from __future__ import annotations

from typing import List

from repro.analysis.lifetime import (
    LOCK_ACQUIRE_OPS, GuardRegion, caller_lock_ids, lock_identity,
)
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.obs.provenance import fact
from repro.hir.builtins import BuiltinOp, FuncKind
from repro.mir.nodes import Body, TerminatorKind


def _kinds_conflict(first: str, second: str) -> bool:
    """Would acquiring ``second`` while holding ``first`` (same lock, same
    thread) block forever / panic?"""
    if first in ("read", "borrow") and second in ("read", "borrow"):
        return False
    return True


class DoubleLockDetector(Detector):
    name = "double-lock"
    description = ("Re-acquisition of a lock while its guard is still "
                   "alive (Rust's implicit unlock has not run yet)")
    paper_section = "7.2"

    def __init__(self, interprocedural: bool = True) -> None:
        self.interprocedural = interprocedural

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        pt = ctx.points_to(body)
        regions = ctx.guard_regions(body)

        for region in regions:
            if region.is_try:
                continue
            # Intra-procedural: another acquisition inside the region.
            for bb, term in body.iter_terminators():
                if term.kind is not TerminatorKind.CALL or term.func is None:
                    continue
                second_kind = LOCK_ACQUIRE_OPS.get(term.func.builtin_op)
                if second_kind is None:
                    continue
                point = (bb, len(body.blocks[bb].statements))
                if bb == region.acquire_block or not region.covers(point):
                    continue
                if not term.args or term.args[0].place is None:
                    continue
                second_ids = lock_identity(body, pt,
                                           term.args[0].place.local)
                if not (second_ids & region.lock_ids):
                    continue
                if not _kinds_conflict(region.kind, second_kind):
                    continue
                shared_ids = second_ids & region.lock_ids
                provenance = [
                    fact("guard-region",
                         f"lifetime analysis: guard from "
                         f"`{region.op.value}` (kind {region.kind}) "
                         f"acquired in block {region.acquire_block} is "
                         f"still live at block {bb}",
                         acquire_block=region.acquire_block,
                         lock_kind=region.kind, op=region.op),
                    fact("lock-identity",
                         f"points-to analysis: both acquisitions "
                         f"resolve to the same lock",
                         shared=shared_ids),
                    fact("reacquire",
                         f"second acquisition `{term.func.name}` "
                         f"(kind {second_kind}) at block {bb} conflicts "
                         f"with the held {region.kind} guard",
                         block=bb, lock_kind=second_kind)]
                if region.via_call is not None:
                    provenance.append(fact(
                        "summary-chain",
                        f"summary engine: the held guard was returned by "
                        f"`{region.via_call}` (its summary holds this lock "
                        f"on return)",
                        chain=[body.key, region.via_call]))
                findings.append(Finding(
                    detector=self.name, kind="double-lock",
                    message=(f"lock acquired by `{term.func.name}` while the "
                             f"guard from `{region.op.value}` (same lock) is "
                             f"still held — the implicit unlock has not run; "
                             f"this self-deadlocks"),
                    fn_key=body.key, span=term.span,
                    metadata={"first": region.kind, "second": second_kind,
                              "acquire_block": region.acquire_block,
                              "reacquire_block": bb,
                              "interprocedural": False},
                    provenance=provenance))
            # Inter-procedural: a call inside the region to a function that
            # (transitively) locks the same lock.
            if not self.interprocedural:
                continue
            findings.extend(self._check_calls_in_region(
                ctx, body, pt, region))
        return findings

    def _check_calls_in_region(self, ctx, body: Body, pt,
                               region: GuardRegion) -> List[Finding]:
        findings: List[Finding] = []
        for bb, term in body.iter_terminators():
            if term.kind is not TerminatorKind.CALL or term.func is None:
                continue
            if term.func.kind not in (FuncKind.USER, FuncKind.CLOSURE):
                continue
            point = (bb, len(body.blocks[bb].statements))
            if not region.covers(point):
                continue
            callee = term.func.user_fn
            summary = ctx.summary(callee)
            if not summary.locks:
                continue
            for lock in summary.locks:
                id_kind, payload, proj, lock_kind = lock
                if not _kinds_conflict(region.kind, lock_kind):
                    continue
                caller_ids = caller_lock_ids(body, pt, term, lock)
                if caller_ids & region.lock_ids:
                    chain = [body.key] + ctx.lock_chain(callee, lock)
                    findings.append(Finding(
                        detector=self.name, kind="double-lock",
                        message=(f"call to `{callee}` while the guard from "
                                 f"`{region.op.value}` is held — the callee "
                                 f"acquires the same lock "
                                 f"({lock_kind}); this self-deadlocks"),
                        fn_key=body.key, span=term.span,
                        metadata={"first": region.kind,
                                  "second": lock_kind,
                                  "callee": callee,
                                  "interprocedural": True},
                        provenance=[
                            fact("guard-region",
                                 f"lifetime analysis: guard from "
                                 f"`{region.op.value}` (kind {region.kind}) "
                                 f"acquired in block "
                                 f"{region.acquire_block} covers the call "
                                 f"at block {bb}",
                                 acquire_block=region.acquire_block,
                                 lock_kind=region.kind, op=region.op),
                            fact("lock-summary",
                                 f"function summary: `{callee}` "
                                 f"(transitively) acquires a {lock_kind} "
                                 f"lock",
                                 callee=callee, lock_kind=lock_kind,
                                 summary_entry=lock),
                            fact("lock-identity",
                                 f"points-to analysis: the callee's lock "
                                 f"resolves to the caller's held lock",
                                 shared=caller_ids & region.lock_ids),
                            fact("summary-chain",
                                 f"summary engine: the acquisition reaches "
                                 f"the lock along "
                                 f"{' → '.join(chain)}",
                                 chain=chain)]))
                    break
        return findings
