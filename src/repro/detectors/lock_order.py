"""Conflicting-lock-order (ABBA deadlock) detector.

The paper attributes seven of its blocking bugs to "acquiring locks in
conflicting orders" (§6.1).  We build a lock-order graph: an edge
``L1 → L2`` is recorded whenever ``L2`` is acquired inside the guard
region of ``L1`` — intra-procedurally, or via a call to a function whose
summary (transitively) locks ``L2``.  A cycle among globally identifiable
locks (statics, heap allocation sites) is a potential ABBA deadlock.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from repro.analysis.lifetime import (
    LOCK_ACQUIRE_OPS, caller_lock_ids, lock_identity,
)
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.hir.builtins import FuncKind
from repro.lang.source import Span
from repro.mir.nodes import Body, TerminatorKind


def _global_ids(ids: FrozenSet) -> Set[Tuple]:
    """Keep only program-wide lock identities (statics / heap sites).

    Argument positions do not qualify *here* — args are caller-relative —
    but they are not lost: the summary engine records arg-relative
    acquisition orders in ``FunctionSummary.lock_orders`` and translates
    them into each caller's frame, so an ABBA pair split across a helper
    that receives both locks as parameters still reaches the graph once
    the ids resolve to statics (see ``check_program``)."""
    return {i for i in ids if i[0] in ("static", "heap")}


class LockOrderDetector(Detector):
    name = "lock-order"
    description = ("Cycles in the lock-acquisition-order graph "
                   "(potential ABBA deadlocks between threads)")
    paper_section = "6.1"

    def check_program(self, ctx: AnalysisContext) -> List[Finding]:
        graph = nx.DiGraph()
        edge_spans: Dict[Tuple, Tuple[str, Span]] = {}

        for body in ctx.program.bodies():
            pt = ctx.points_to(body)
            regions = ctx.guard_regions(body)
            for region in regions:
                firsts = _global_ids(region.lock_ids)
                if not firsts:
                    continue
                for bb, term in body.iter_terminators():
                    if term.kind is not TerminatorKind.CALL or term.func is None:
                        continue
                    point = (bb, len(body.blocks[bb].statements))
                    if bb == region.acquire_block or not region.covers(point):
                        continue
                    second_ids: Set[Tuple] = set()
                    if LOCK_ACQUIRE_OPS.get(term.func.builtin_op) is not None:
                        if not term.args or term.args[0].place is None:
                            continue
                        second_ids = _global_ids(lock_identity(
                            body, pt, term.args[0].place.local))
                    elif term.func.kind in (FuncKind.USER, FuncKind.CLOSURE):
                        # A call inside the region: every lock the callee's
                        # summary (transitively) acquires is ordered after
                        # the held one.
                        summary = ctx.summary(term.func.user_fn)
                        for lock in summary.locks:
                            second_ids |= _global_ids(
                                caller_lock_ids(body, pt, term, lock))
                    for first in firsts:
                        for second in second_ids:
                            if first == second:
                                continue
                            graph.add_edge(first, second)
                            edge_spans[(first, second)] = (body.key, term.span)

            # Summary-carried orders: acquisition pairs observed inside
            # callees with argument-relative lock identities, translated
            # into this body's frame by the engine.  Only pairs that
            # resolved all the way to global ids enter the graph.
            for (a, b), span in sorted(
                    ctx.summary(body.key).lock_orders.items(),
                    key=lambda item: (str(item[0]), item[1].lo)):
                first, second = a[:3], b[:3]
                if first == second or a[0] != "static" or b[0] != "static":
                    continue
                graph.add_edge(first, second)
                edge_spans.setdefault((first, second), (body.key, span))

        findings: List[Finding] = []
        seen_cycles = set()
        for cycle in nx.simple_cycles(graph):
            key = frozenset(cycle)
            if key in seen_cycles or len(cycle) < 2:
                continue
            seen_cycles.add(key)
            first, second = cycle[0], cycle[1]
            fn_key, span = edge_spans.get((first, second),
                                          ("<program>", Span.DUMMY))
            pretty = " -> ".join(self._pretty(lock) for lock in cycle)
            findings.append(Finding(
                detector=self.name, kind="conflicting-lock-order",
                message=(f"locks are acquired in conflicting orders: "
                         f"{pretty} -> {self._pretty(cycle[0])}; two threads "
                         f"interleaving these acquisitions deadlock"),
                fn_key=fn_key, span=span, severity=Severity.WARNING,
                metadata={"cycle": [str(c) for c in cycle]}))
        return findings

    @staticmethod
    def _pretty(lock: Tuple) -> str:
        kind, payload = lock[0], lock[1]
        proj = lock[2] if len(lock) > 2 else ()
        suffix = ("." + ".".join(proj)) if proj else ""
        if kind == "static":
            return f"static `{payload}`{suffix}"
        return f"lock@{payload}{suffix}"
