"""Unsafe-encapsulation detectors (paper §5).

Three detectors consume the engine's unsafe-provenance summary component
(:mod:`repro.analysis.unsafe_prop`):

* ``unsafe-leak`` — a raw pointer *born in an unsafe region* escapes its
  encapsulation boundary: returned from a safe **public** API, or written
  to a static.  The paper's §5.3 observation that "interior unsafe
  functions sometimes leak raw pointers to their callers" and its memory
  bugs where the leaked pointer is later used unsafely.
* ``unchecked-unsafe-input`` — a caller-controlled argument reaches an
  unsafe dereference/index/offset with no dominating null/bounds check:
  the "improper input validation in interior unsafe" pattern.  ``unsafe
  fn`` bodies are skipped — there the obligation is the caller's by
  contract — and the interprocedural summary makes sure a public wrapper
  forwarding into an unchecked private helper is reported too.
* ``interior-unsafe-audit`` — the §5 study regenerated as findings: one
  NOTE per interior-unsafe function with its checked / unchecked /
  caller-delegated classification.  Only active under
  ``AnalysisConfig(audit_unsafe=True)`` (the ``minirust audit-unsafe``
  path), so plain ``check`` runs never mix audit rows into bug findings.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro import obs
from repro.analysis.unsafe_prop import (
    classify_interior_unsafe, unsafe_born_locals,
)
from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.report import Finding, Severity
from repro.lang.source import Span
from repro.mir.nodes import Body, CastKind, RvalueKind, StatementKind
from repro.obs.provenance import fact


def _born_site(body: Body) -> Optional[Span]:
    """The first unsafe-region statement/terminator that mints a raw
    pointer in this body, for provenance messages."""
    for _bb, _i, stmt in body.iter_statements():
        if stmt.in_unsafe and stmt.kind is StatementKind.ASSIGN \
                and stmt.rvalue is not None \
                and stmt.rvalue.kind is RvalueKind.CAST \
                and stmt.rvalue.cast_kind in (CastKind.REF_TO_RAW,
                                              CastKind.INT_TO_RAW):
            return stmt.span
    for _bb, term in body.iter_terminators():
        if term.in_unsafe and term.func is not None and term.func.is_unsafe:
            return term.span
    return None


class UnsafeLeakDetector(Detector):
    name = "unsafe-leak"
    description = ("Raw pointer born in an unsafe region escapes through "
                   "a safe public API return or a write to shared state")
    paper_section = "5.3"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        findings: List[Finding] = []
        summaries = ctx.engine.summaries_map()
        prov = ctx.summary(body.key).unsafe_provenance

        if body.is_pub and not body.is_unsafe_fn \
                and body.local_ty(0).is_raw_ptr and prov.returns_unsafe_ptr:
            facts = [fact("unsafe-born",
                          "the returned pointer is derived inside an "
                          "unsafe region somewhere in the call tree")]
            site = _born_site(body)
            if site is not None:
                facts.append(fact("born-site",
                                  "raw pointer minted here",
                                  span={"lo": site.lo, "hi": site.hi}))
            facts.append(fact(
                "public-api",
                f"`{body.key}` is a safe `pub fn` returning a raw "
                f"pointer: callers outside the module receive the "
                f"pointer with no usage contract"))
            findings.append(Finding(
                detector=self.name, kind="raw-ptr-return-escape",
                message=(f"safe public fn `{body.key}` returns a raw "
                         f"pointer born in an unsafe region; the unsafe "
                         f"obligation silently escapes its encapsulation "
                         f"boundary (paper §5.3)"),
                fn_key=body.key, span=body.span,
                severity=Severity.WARNING, provenance=facts))

        born = unsafe_born_locals(body, summaries)
        if born:
            pt = ctx.points_to(body)
            for _bb, _i, stmt in body.iter_statements():
                if stmt.kind is not StatementKind.ASSIGN \
                        or stmt.rvalue is None \
                        or stmt.rvalue.kind not in (RvalueKind.USE,
                                                    RvalueKind.CAST):
                    continue
                if not any(op.place is not None
                           and op.place.local in born
                           for op in stmt.rvalue.operands):
                    continue
                dest = stmt.place.local
                name = body.locals[dest].name or ""
                is_static = name.startswith("static:")
                static_name = name[7:] if is_static else None
                if not is_static and stmt.place.has_deref:
                    for target in pt.targets(dest):
                        if target[0] == "static":
                            is_static, static_name = True, target[1]
                            break
                if not is_static:
                    continue
                findings.append(Finding(
                    detector=self.name, kind="raw-ptr-static-escape",
                    message=(f"raw pointer born in an unsafe region is "
                             f"stored to static `{static_name}`; any code "
                             f"can now reach the unsafe pointer through "
                             f"shared state (paper §5.3)"),
                    fn_key=body.key, span=stmt.span,
                    severity=Severity.WARNING,
                    provenance=[fact("unsafe-born",
                                     "the stored pointer is derived "
                                     "inside an unsafe region"),
                                fact("shared-state",
                                     f"static `{static_name}` is "
                                     f"reachable program-wide")]))
        return findings


class UncheckedUnsafeInputDetector(Detector):
    name = "unchecked-unsafe-input"
    description = ("Caller-controlled argument reaches an unsafe "
                   "deref/index/offset with no dominating guard")
    paper_section = "5.3"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        if body.is_unsafe_fn or body.is_closure:
            # `unsafe fn`: the check obligation is the caller's by
            # contract.  Closures: their "arguments" include captures,
            # which are not caller-controlled API inputs.
            return []
        prov = ctx.summary(body.key).unsafe_provenance
        findings: List[Finding] = []
        for position in sorted(prov.arg_sinks):
            kind, hop, span = prov.arg_sinks[position]
            arg_name = body.locals[position + 1].name \
                if position + 1 < len(body.locals) else None
            arg_label = f"`{arg_name}`" if arg_name \
                else f"#{position}"
            facts = [fact("taint-source",
                          f"argument {arg_label} of `{body.key}` is "
                          f"caller-controlled")]
            if hop is None:
                facts.append(fact(
                    "unsafe-sink",
                    f"reaches an unsafe {kind} in this body with no "
                    f"dominating null/bounds check"))
            else:
                chain = self._chain(ctx, body.key, position)
                facts.append(fact(
                    "summary-chain",
                    f"flows unguarded into the unsafe {kind} via "
                    + " -> ".join(f"`{f}`" for f in chain),
                    chain=chain))
            where = "in this body" if hop is None \
                else f"via `{hop[0]}`"
            findings.append(Finding(
                detector=self.name, kind="unchecked-unsafe-input",
                message=(f"argument {arg_label} of safe fn `{body.key}` "
                         f"reaches an unsafe {kind} {where} with no "
                         f"dominating guard; a hostile value corrupts "
                         f"memory from safe code (paper §5.3)"),
                fn_key=body.key, span=span, severity=Severity.WARNING,
                provenance=facts))
        return findings

    @staticmethod
    def _chain(ctx: AnalysisContext, key: str, position: int) -> List[str]:
        """Follow the arg-sink hops down to the function containing the
        actual unsafe operation."""
        chain = [key]
        seen: Set[Tuple[str, int]] = {(key, position)}
        current_key, current_pos = key, position
        while True:
            prov = ctx.summary(current_key).unsafe_provenance
            entry = prov.arg_sinks.get(current_pos)
            if entry is None or entry[1] is None:
                break
            current_key, current_pos = entry[1]
            if (current_key, current_pos) in seen:
                break
            seen.add((current_key, current_pos))
            chain.append(current_key)
        return chain


class InteriorUnsafeAuditDetector(Detector):
    name = "interior-unsafe-audit"
    description = ("Study-style classification of every interior-unsafe "
                   "function as checked / unchecked / caller-delegated "
                   "(only under audit_unsafe=True)")
    paper_section = "5"

    def check_body(self, ctx: AnalysisContext, body: Body) -> List[Finding]:
        if not ctx.config.audit_unsafe or not body.has_interior_unsafe:
            return []
        prov = ctx.summary(body.key).unsafe_provenance
        classification = classify_interior_unsafe(prov)
        obs.count(f"audit.interior_unsafe.{classification}")
        detail = {
            "classification": classification,
            "unsafe_sites": prov.unsafe_sites,
            "unchecked_args": sorted(prov.arg_sinks),
            "guarded_args": sorted(prov.guarded_args),
            "delegated_args": sorted(prov.delegated_args),
            "returns_unsafe_ptr": prov.returns_unsafe_ptr,
            "is_pub": body.is_pub,
        }
        return [Finding(
            detector=self.name, kind="interior-unsafe",
            message=(f"interior-unsafe fn `{body.key}`: {classification} "
                     f"({prov.unsafe_sites} unsafe MIR sites)"),
            fn_key=body.key, span=body.span, severity=Severity.NOTE,
            metadata=detail,
            provenance=[fact("classification",
                             f"§5.3 encapsulation verdict: "
                             f"{classification}", **detail)])]
