"""Detector registry: every built detector, discoverable by name."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.buffer_overflow import BufferOverflowDetector
from repro.detectors.concurrency_misc import (
    ChannelDetector, CondvarDetector, OnceRecursionDetector,
)
from repro.detectors.data_race import DataRaceDetector
from repro.detectors.deadlock import DeadlockDetector
from repro.detectors.double_lock import DoubleLockDetector
from repro.detectors.interior_mutability import (
    AtomicityViolationDetector, SyncUnsyncWriteDetector,
)
from repro.detectors.lock_order import LockOrderDetector
from repro.detectors.memory_misc import (
    DoubleFreeDetector, InvalidFreeDetector, NullDerefDetector,
    UninitReadDetector,
)
from repro.detectors.panic_safety import (
    BadDropDetector, PanicSafetyDetector, UninitExposureDetector,
)
from repro.detectors.report import Report
from repro.detectors.unsafe_prop import (
    InteriorUnsafeAuditDetector, UncheckedUnsafeInputDetector,
    UnsafeLeakDetector,
)
from repro.detectors.use_after_free import (
    DanglingReturnDetector, UseAfterFreeDetector,
)

#: All detector classes, in report order.  The first two are the paper's
#: own detectors (§7); the rest realise its §7.1/§7.2 suggestions.
ALL_DETECTORS: List[Type[Detector]] = [
    UseAfterFreeDetector,
    DanglingReturnDetector,
    DoubleLockDetector,
    DoubleFreeDetector,
    InvalidFreeDetector,
    NullDerefDetector,
    UninitReadDetector,
    PanicSafetyDetector,
    BadDropDetector,
    UninitExposureDetector,
    BufferOverflowDetector,
    LockOrderDetector,
    DeadlockDetector,
    CondvarDetector,
    ChannelDetector,
    OnceRecursionDetector,
    SyncUnsyncWriteDetector,
    AtomicityViolationDetector,
    DataRaceDetector,
    UnsafeLeakDetector,
    UncheckedUnsafeInputDetector,
    InteriorUnsafeAuditDetector,
]

MEMORY_DETECTORS = [UseAfterFreeDetector, DanglingReturnDetector,
                    DoubleFreeDetector,
                    InvalidFreeDetector, NullDerefDetector,
                    UninitReadDetector, PanicSafetyDetector,
                    BadDropDetector, UninitExposureDetector,
                    BufferOverflowDetector,
                    UnsafeLeakDetector, UncheckedUnsafeInputDetector]
CONCURRENCY_DETECTORS = [DoubleLockDetector, LockOrderDetector,
                         DeadlockDetector,
                         CondvarDetector, ChannelDetector,
                         OnceRecursionDetector, SyncUnsyncWriteDetector,
                         AtomicityViolationDetector, DataRaceDetector]


def detector_by_name(name: str) -> Optional[Type[Detector]]:
    # Accept underscores for hyphens so `--detector data_race` works the
    # same as `--detector data-race`.
    normalised = name.replace("_", "-")
    for cls in ALL_DETECTORS:
        if cls.name == normalised:
            return cls
    return None


def detector_catalog() -> List[Dict[str, str]]:
    """Name, description and paper section of every registered detector,
    in report order — the data behind ``minirust detectors``."""
    return [{"name": cls.name, "description": cls.description,
             "paper_section": cls.paper_section}
            for cls in ALL_DETECTORS]


def resolve_detectors(names) -> List[Detector]:
    """Instantiate detectors from names, raising ``ValueError`` on an
    unknown name — the single validation point for
    ``AnalysisConfig.detectors`` and the CLI's ``--detector``."""
    detectors = []
    for name in names:
        cls = detector_by_name(name)
        if cls is None:
            known = ", ".join(c.name for c in ALL_DETECTORS)
            raise ValueError(f"unknown detector: {name!r} (known: {known})")
        detectors.append(cls())
    return detectors


def apply_subsumption(report: Report) -> Report:
    """Suppress weaker findings the deadlock engine strictly subsumes.

    A ``deadlock-cycle`` finding proves two *threads* can interleave the
    conflicting acquisitions; a ``lock-order`` ABBA finding over the same
    lock set only observes the conflicting orders exist somewhere.  When
    both fire on the same cycle (compared as an unordered lock set), the
    weaker one is dropped and the survivor records a ``subsumed_by``
    provenance fact naming it.  Likewise a ``recv-deadlock`` finding
    (every live sender provably blocked) subsumes the channel detector's
    heuristic ``recv-holding-lock`` warning at the same recv site.

    ``double-lock`` never overlaps: a lock-graph cycle has at least two
    *distinct* locks per its node-identity rule, while double-lock is
    one lock acquired twice by one thread.

    The panic-model detectors add two more rules.  A ``panic-safety``
    finding proves the double ownership *and* the panic edge that
    manifests it, so it subsumes the flow-insensitive ``double-free`` /
    ``use-after-free`` reports on the same function (matched on the
    duplicated ``source`` local when both record one).  Likewise
    ``uninit-exposure`` proves the escaping pointer targets memory that
    is still uninitialised, strictly stronger than ``unsafe-leak``'s
    escape-only report on the same function.
    """
    from repro import obs
    from repro.obs.provenance import fact

    by_cycle = {}
    recv_sites = {}
    panic_safety_by_fn = {}
    exposure_by_fn = {}
    for f in report.findings:
        if f.detector == "panic-safety":
            panic_safety_by_fn.setdefault(f.fn_key, f)
        elif f.detector == "uninit-exposure":
            exposure_by_fn.setdefault(f.fn_key, f)
        if f.detector != "deadlock":
            continue
        if f.kind == "deadlock-cycle":
            by_cycle[frozenset(f.metadata.get("cycle", []))] = f
        elif f.kind == "recv-deadlock":
            recv_sites[(f.fn_key, f.span.lo)] = f
    if not by_cycle and not recv_sites and not panic_safety_by_fn \
            and not exposure_by_fn:
        return report
    kept = []
    for f in report.findings:
        winner = None
        if f.detector == "lock-order" and f.metadata.get("cycle"):
            winner = by_cycle.get(frozenset(f.metadata["cycle"]))
        elif f.detector == "channel" and f.kind == "recv-holding-lock":
            winner = recv_sites.get((f.fn_key, f.span.lo))
        elif f.detector in ("double-free", "use-after-free"):
            candidate = panic_safety_by_fn.get(f.fn_key)
            if candidate is not None and (
                    "source" not in f.metadata
                    or f.metadata["source"]
                    == candidate.metadata.get("source")):
                winner = candidate
        elif f.detector == "unsafe-leak":
            winner = exposure_by_fn.get(f.fn_key)
        if winner is not None:
            obs.count("detectors.subsumed")
            winner.provenance.append(fact(
                "subsumed_by",
                f"this finding subsumes a weaker `{f.detector}`/"
                f"`{f.kind}` finding on the same evidence "
                f"(was reported in `{f.fn_key}`)",
                detector=f.detector, finding_kind=f.kind,
                fn_key=f.fn_key))
            continue
        kept.append(f)
    report.findings[:] = kept
    return report


def run_detectors(program, detectors: Optional[List[Detector]] = None,
                  source=None, config=None, pool=None) -> Report:
    """Run detectors over a MIR program and return a deduplicated report.

    ``detectors`` (instances) wins over ``config.detectors`` (names);
    with neither, the full registry runs.  Each detector runs under its
    own ``detector.<name>`` span with a findings counter, so
    ``--profile`` breaks the check time down per-detector and per
    shared-analysis pass.
    """
    from repro import obs
    from repro.analysis.config import coerce_config
    config = coerce_config(config, _owner="run_detectors")
    if detectors is None:
        if config.detectors is not None:
            detectors = resolve_detectors(config.detectors)
        else:
            detectors = [cls() for cls in ALL_DETECTORS]
    ctx = AnalysisContext(program, config, pool=pool)
    report = Report(source=source)
    with obs.span("detectors"):
        for detector in detectors:
            with obs.span(f"detector.{detector.name}"):
                found = detector.run(ctx)
            obs.count(f"detector.{detector.name}.findings", len(found))
            report.extend(found)
    deduped = apply_subsumption(report.dedup())
    obs.count("detectors.findings", len(deduped.findings))
    return deduped
