"""Static bug detectors over MIR.

The first two (:class:`~repro.detectors.use_after_free.UseAfterFreeDetector`
and :class:`~repro.detectors.double_lock.DoubleLockDetector`) reproduce the
paper's own §7 detectors; the remainder implement the detector directions
the paper proposes in §7.1/§7.2.
"""

from repro.detectors.base import AnalysisContext, Detector
from repro.detectors.registry import (
    ALL_DETECTORS, CONCURRENCY_DETECTORS, MEMORY_DETECTORS,
    detector_by_name, run_detectors,
)
from repro.detectors.report import Finding, Report, Severity

__all__ = [
    "AnalysisContext", "Detector", "ALL_DETECTORS", "MEMORY_DETECTORS",
    "CONCURRENCY_DETECTORS", "detector_by_name", "run_detectors",
    "Finding", "Report", "Severity",
]
