"""The paper's labelled datasets, reconstructed from published marginals.

Every aggregate number the paper reports (Tables 1-4, the §4/§5/§6
statistics) is reproduced *exactly* by aggregating these records.  Joint
distributions the paper does not publish — e.g. which project a particular
Table 2 cell's bug came from — are filled in by a deterministic
round-robin that respects all published marginals; EXPERIMENTS.md lists
each such reconstruction.

Two known internal inconsistencies of the paper are preserved faithfully
and documented rather than silently "fixed":

* Table 1's per-project bug counts sum to 49 memory / 59 blocking / 40
  non-blocking, while the text reports 70 / 59 / 41 (the extra memory
  bugs come from CVE/RustSec; we attribute 21 records to ``Project.CVE``
  so the 70 total holds, and note the text's "22" claim).
* Table 4's ``libraries`` row sums to 11 non-blocking bugs where Table 1
  prints 10.  Our records follow Table 4 (whose row and column totals are
  self-consistent and give the text's 41).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.study.taxonomy import (
    TABLE1_PROJECTS, BlockingCause, BlockingFix, BlockingPrimitive, BugKind,
    DataSharing, DoubleLockShape, FixStrategy, InteriorUnsafeCheck,
    MemoryEffect, NonblockingFix, NonblockingIssue, Project, Propagation,
    SkippedCode, UnsafeOpKind, UnsafePurpose, UnsafeRemovalReason,
)


@dataclass
class BugRecord:
    """One studied bug with every label the paper's analysis uses."""

    bug_id: str
    project: Project
    kind: BugKind
    fix_date: datetime.date
    source: str = "github"
    # Memory-bug labels (Table 2, §5).
    effect: Optional[MemoryEffect] = None
    propagation: Optional[Propagation] = None
    effect_in_interior_unsafe: bool = False
    fix_strategy: Optional[FixStrategy] = None
    skipped_code: SkippedCode = SkippedCode.NOT_APPLICABLE
    # Blocking labels (Table 3, §6.1).
    primitive: Optional[BlockingPrimitive] = None
    blocking_cause: Optional[BlockingCause] = None
    double_lock_shape: DoubleLockShape = DoubleLockShape.NOT_APPLICABLE
    blocking_fix: Optional[BlockingFix] = None
    # Non-blocking labels (Table 4, §6.2).
    sharing: Optional[DataSharing] = None
    issue: Optional[NonblockingIssue] = None
    in_safe_code: bool = False
    synchronized: bool = False
    interior_unsafe_sharing: bool = False
    interior_mutability: bool = False
    nonblocking_fix: Optional[NonblockingFix] = None


# ---------------------------------------------------------------------------
# Published marginals
# ---------------------------------------------------------------------------

#: Table 1 metadata: start time, GitHub stars, commits, LOC (thousands).
TABLE1_METADATA: Dict[Project, Dict[str, object]] = {
    Project.SERVO: {"start": "2012/02", "stars": 14574, "commits": 38096,
                    "loc_k": 271},
    Project.TOCK: {"start": "2015/05", "stars": 1343, "commits": 4621,
                   "loc_k": 60},
    Project.ETHEREUM: {"start": "2015/11", "stars": 5565, "commits": 12121,
                       "loc_k": 145},
    Project.TIKV: {"start": "2016/01", "stars": 5717, "commits": 3897,
                   "loc_k": 149},
    Project.REDOX: {"start": "2016/08", "stars": 11450, "commits": 2129,
                    "loc_k": 199},
    Project.LIBRARIES: {"start": "2010/07", "stars": 3106, "commits": 2402,
                        "loc_k": 25},
}

#: Table 1 per-project bug counts (Mem, Blk, NBlk) — NBlk follows Table 4
#: for the libraries row (11, not the 10 Table 1 prints; see module doc).
TABLE1_BUG_COUNTS: Dict[Project, Tuple[int, int, int]] = {
    Project.SERVO: (14, 13, 18),
    Project.TOCK: (5, 0, 2),
    Project.ETHEREUM: (2, 34, 4),
    Project.TIKV: (1, 4, 3),
    Project.REDOX: (20, 2, 3),
    Project.LIBRARIES: (7, 6, 11),
}
#: The value Table 1 actually prints for libraries' non-blocking bugs.
TABLE1_PUBLISHED_LIBRARIES_NONBLOCKING = 10

#: Memory bugs attributed to the CVE/RustSec databases so that the total
#: reaches the text's 70 (the text says "22 bugs collected from the two
#: CVE databases"; one of those overlaps a project row).
CVE_MEMORY_BUGS = 70 - sum(m for m, _b, _n in TABLE1_BUG_COUNTS.values())

#: Table 2 cells: propagation → [(effect, count, count-in-interior-unsafe)].
TABLE2_CELLS: Dict[Propagation, List[Tuple[MemoryEffect, int, int]]] = {
    Propagation.SAFE: [
        (MemoryEffect.USE_AFTER_FREE, 1, 0),
    ],
    Propagation.UNSAFE: [
        (MemoryEffect.BUFFER_OVERFLOW, 4, 1),
        (MemoryEffect.NULL_DEREF, 12, 4),
        (MemoryEffect.INVALID_FREE, 5, 3),
        (MemoryEffect.USE_AFTER_FREE, 2, 2),
    ],
    Propagation.SAFE_TO_UNSAFE: [
        (MemoryEffect.BUFFER_OVERFLOW, 17, 10),
        (MemoryEffect.INVALID_FREE, 1, 0),
        (MemoryEffect.USE_AFTER_FREE, 11, 4),
        (MemoryEffect.DOUBLE_FREE, 2, 2),
    ],
    Propagation.UNSAFE_TO_SAFE: [
        (MemoryEffect.UNINITIALIZED, 7, 0),
        (MemoryEffect.INVALID_FREE, 4, 0),
        (MemoryEffect.DOUBLE_FREE, 4, 0),
    ],
}

#: §5.2 fix strategies: (strategy, count) plus the skip breakdown.
FIX_STRATEGY_COUNTS = [
    (FixStrategy.CONDITIONALLY_SKIP, 30),
    (FixStrategy.ADJUST_LIFETIME, 22),
    (FixStrategy.CHANGE_UNSAFE_OPERANDS, 9),
    (FixStrategy.OTHER, 9),
]
SKIP_BREAKDOWN = [(SkippedCode.UNSAFE, 25), (SkippedCode.INTERIOR_UNSAFE, 4),
                  (SkippedCode.SAFE, 1)]

#: Table 3: project → (Mutex&Rwlock, Condvar, Channel, Once, Other).
TABLE3_ROWS: Dict[Project, Tuple[int, int, int, int, int]] = {
    Project.SERVO: (6, 0, 5, 0, 2),
    Project.TOCK: (0, 0, 0, 0, 0),
    Project.ETHEREUM: (27, 6, 0, 0, 1),
    Project.TIKV: (3, 1, 0, 0, 0),
    Project.REDOX: (2, 0, 0, 0, 0),
    Project.LIBRARIES: (0, 3, 1, 1, 1),
}

#: §6.1 cause breakdown per primitive.
BLOCKING_CAUSES: Dict[BlockingPrimitive, List[Tuple[BlockingCause, int]]] = {
    BlockingPrimitive.MUTEX_RWLOCK: [
        (BlockingCause.DOUBLE_LOCK, 30),
        (BlockingCause.CONFLICTING_ORDER, 7),
        (BlockingCause.FORGOT_UNLOCK, 1),
    ],
    BlockingPrimitive.CONDVAR: [
        (BlockingCause.WAIT_NO_NOTIFY, 8),
        (BlockingCause.WAIT_MUTUAL, 2),
    ],
    BlockingPrimitive.CHANNEL: [
        (BlockingCause.RECV_NO_SENDER, 1),
        (BlockingCause.CHANNEL_MUTUAL, 3),
        (BlockingCause.RECV_HOLDING_LOCK, 1),
        (BlockingCause.SEND_FULL_CHANNEL, 1),
    ],
    BlockingPrimitive.ONCE: [
        (BlockingCause.ONCE_RECURSION, 1),
    ],
    BlockingPrimitive.OTHER: [
        (BlockingCause.BLOCKING_SYSCALL, 1),
        (BlockingCause.BUSY_LOOP, 2),
        (BlockingCause.JOIN, 1),
    ],
}

#: §6.1: of the 30 double locks, where the first lock sat.
DOUBLE_LOCK_SHAPES = [(DoubleLockShape.MATCH_CONDITION, 6),
                      (DoubleLockShape.IF_CONDITION, 5),
                      (DoubleLockShape.OTHER, 19)]

#: §6.1 fixes: 51 of 59 adjusted synchronisation; 21 of those adjusted the
#: lifetime of the lock() return value; 8 were fixed otherwise.
BLOCKING_FIX_COUNTS = [(BlockingFix.GUARD_LIFETIME, 21),
                       (BlockingFix.ADJUST_SYNC, 30),
                       (BlockingFix.OTHER, 8)]

#: Table 4: project → (Global, Pointer, Sync, O.H., Atomic, Mutex, MSG).
TABLE4_ROWS: Dict[Project, Tuple[int, ...]] = {
    Project.SERVO: (1, 7, 1, 0, 0, 7, 2),
    Project.TOCK: (0, 0, 0, 2, 0, 0, 0),
    Project.ETHEREUM: (0, 0, 0, 0, 1, 2, 1),
    Project.TIKV: (0, 0, 0, 1, 1, 1, 0),
    Project.REDOX: (1, 0, 0, 2, 0, 0, 0),
    Project.LIBRARIES: (1, 5, 2, 0, 3, 0, 0),
}
TABLE4_COLUMNS = [DataSharing.GLOBAL, DataSharing.POINTER,
                  DataSharing.SYNC_TRAIT, DataSharing.OS_HARDWARE,
                  DataSharing.ATOMIC, DataSharing.MUTEX, DataSharing.MESSAGE]

#: §6.2: of the 23 unsafe-sharing bugs, 19 share via interior-unsafe fns.
INTERIOR_UNSAFE_SHARING = 19
#: §6.2: 17 of the 38 shared-memory bugs have no synchronisation at all.
UNSYNCHRONIZED_COUNT = 17
#: §6.2: 25 of the 41 non-blocking bugs happen in safe code.
IN_SAFE_CODE_COUNT = 25
#: §6.2: 13 bugs involve interior mutability (Figure 9 plus 12 more).
INTERIOR_MUTABILITY_COUNT = 13

#: §6.2 fixes (the three message-passing bugs are not in this breakdown).
NONBLOCKING_FIX_COUNTS = [(NonblockingFix.ENFORCE_ATOMICITY, 20),
                          (NonblockingFix.ENFORCE_ORDER, 10),
                          (NonblockingFix.AVOID_SHARING, 5),
                          (NonblockingFix.LOCAL_COPY, 1),
                          (NonblockingFix.APP_LOGIC, 2)]

#: §3: 145 of the 170 studied bugs were fixed after the start of 2016.
FIXED_AFTER_2016 = 145


# ---------------------------------------------------------------------------
# §4 unsafe-usage statistics (published constants)
# ---------------------------------------------------------------------------

UNSAFE_USAGE_STATS = {
    "apps_total": 4990,
    "apps_blocks": 3665,
    "apps_fns": 1302,
    "apps_traits": 23,
    "std_blocks": 1581,
    "std_fns": 861,
    "std_traits": 12,
    "sample_size": 600,
    "sample_interior": 400,
    "sample_fns": 200,
    "std_interior_sample": 250,
    "app_interior_sample": 400,
    "no_compile_error_removals": 32,
    "no_compile_error_consistency": 21,
    "std_unsafe_constructors": 50,
    "improper_encapsulations": 19,
    "improper_std": 5,
    "improper_apps": 14,
}

#: §4.1: the 600 sampled usages — operation kinds (66% / 29% / 5%).
USAGE_OP_COUNTS = [(UnsafeOpKind.MEMORY_OPERATION, 396),
                   (UnsafeOpKind.UNSAFE_CALL, 174),
                   (UnsafeOpKind.OTHER, 30)]
#: §4.1: purposes (42% / 22% / 14% / 22%).
USAGE_PURPOSE_COUNTS = [(UnsafePurpose.CODE_REUSE, 252),
                        (UnsafePurpose.PERFORMANCE, 132),
                        (UnsafePurpose.THREAD_SHARING, 84),
                        (UnsafePurpose.OTHER_BYPASS, 132)]

#: §4.3: the 250 sampled std interior-unsafe functions.
INTERIOR_CONDITION_COUNTS = [("valid memory / valid UTF-8", 172),
                             ("lifetime or ownership", 38),
                             ("other", 40)]
INTERIOR_CHECK_COUNTS = [(InteriorUnsafeCheck.INPUT_ENVIRONMENT, 145),
                         (InteriorUnsafeCheck.EXPLICIT_CHECK, 105)]

#: §4.2: the 130 unsafe removals (from 108 commits).
REMOVAL_REASON_COUNTS = [(UnsafeRemovalReason.MEMORY_SAFETY, 79),
                         (UnsafeRemovalReason.CODE_STRUCTURE, 31),
                         (UnsafeRemovalReason.THREAD_SAFETY, 13),
                         (UnsafeRemovalReason.BUG_FIX, 4),
                         (UnsafeRemovalReason.UNNECESSARY, 3)]
REMOVAL_COMMITS = 108
REMOVALS_TO_SAFE = 43
REMOVALS_TO_INTERIOR = [("std interior-unsafe function", 48),
                        ("self-implemented interior-unsafe function", 29),
                        ("third-party interior-unsafe function", 10)]


# ---------------------------------------------------------------------------
# Record reconstruction
# ---------------------------------------------------------------------------

def _quarters(start_year: int, start_q: int, end_year: int,
              end_q: int) -> List[Tuple[int, int]]:
    out = []
    year, quarter = start_year, start_q
    while (year, quarter) <= (end_year, end_q):
        out.append((year, quarter))
        quarter += 1
        if quarter == 5:
            year, quarter = year + 1, 1
    return out


#: Per-project windows for synthesised fix dates.  Pre-2016 bugs (25 of
#: 170) are placed in Servo and the libraries, whose histories predate
#: Rust 1.6; everything else lands 2016-2019 (the paper's Figure 2 shape).
_PRE_2016_QUOTA = {Project.SERVO: 18, Project.LIBRARIES: 7}
_DATE_WINDOWS = {
    Project.SERVO: _quarters(2013, 1, 2019, 3),
    Project.TOCK: _quarters(2016, 1, 2019, 3),
    Project.ETHEREUM: _quarters(2016, 1, 2019, 3),
    Project.TIKV: _quarters(2016, 2, 2019, 3),
    Project.REDOX: _quarters(2016, 3, 2019, 3),
    Project.LIBRARIES: _quarters(2013, 1, 2019, 3),
    Project.CVE: _quarters(2016, 1, 2019, 3),
}


class _DateAssigner:
    """Deterministically spreads fix dates over each project's window,
    honouring the pre-2016 quotas."""

    def __init__(self) -> None:
        self.counters: Dict[Project, int] = {}
        self.pre_2016_left = dict(_PRE_2016_QUOTA)

    def next_date(self, project: Project) -> datetime.date:
        window = _DATE_WINDOWS[project]
        index = self.counters.get(project, 0)
        self.counters[project] = index + 1
        pre = [q for q in window if q[0] < 2016]
        post = [q for q in window if q[0] >= 2016]
        left = self.pre_2016_left.get(project, 0)
        if left > 0 and pre:
            self.pre_2016_left[project] = left - 1
            year, quarter = pre[index % len(pre)]
        else:
            year, quarter = post[index % len(post)]
        month = (quarter - 1) * 3 + 1 + (index % 3)
        day = 1 + (index * 7) % 28
        return datetime.date(year, min(month, 12), day)


def _round_robin(quotas: Dict[Project, int]) -> List[Project]:
    """Interleave projects according to their quotas, deterministically."""
    remaining = {p: n for p, n in quotas.items() if n > 0}
    order: List[Project] = []
    while remaining:
        for project in list(remaining):
            order.append(project)
            remaining[project] -= 1
            if remaining[project] == 0:
                del remaining[project]
    return order


def _build_memory_bugs(dates: _DateAssigner) -> List[BugRecord]:
    records: List[BugRecord] = []
    # Flatten Table 2 into bug slots.
    slots: List[Tuple[Propagation, MemoryEffect, bool]] = []
    for propagation, cells in TABLE2_CELLS.items():
        for effect, count, interior in cells:
            for i in range(count):
                slots.append((propagation, effect, i < interior))

    # Project attribution: Table 1 quotas + CVE remainder.
    quotas = {p: TABLE1_BUG_COUNTS[p][0] for p in TABLE1_PROJECTS}
    quotas[Project.CVE] = CVE_MEMORY_BUGS
    projects = _round_robin(quotas)
    assert len(projects) == len(slots) == 70

    # Fix strategies: prefer lifetime fixes for lifetime bugs (the paper's
    # Figures 6/7 are fixed that way), then fill the published counts.
    strategy_pool: Dict[FixStrategy, int] = dict(FIX_STRATEGY_COUNTS)
    skip_pool: Dict[SkippedCode, int] = dict(SKIP_BREAKDOWN)
    lifetime_effects = {MemoryEffect.USE_AFTER_FREE,
                        MemoryEffect.DOUBLE_FREE, MemoryEffect.INVALID_FREE}

    def pick_strategy(effect: MemoryEffect) -> FixStrategy:
        if effect in lifetime_effects and \
                strategy_pool.get(FixStrategy.ADJUST_LIFETIME, 0) > 0:
            strategy_pool[FixStrategy.ADJUST_LIFETIME] -= 1
            return FixStrategy.ADJUST_LIFETIME
        for strategy in (FixStrategy.CONDITIONALLY_SKIP,
                         FixStrategy.CHANGE_UNSAFE_OPERANDS,
                         FixStrategy.OTHER, FixStrategy.ADJUST_LIFETIME):
            if strategy_pool.get(strategy, 0) > 0:
                strategy_pool[strategy] -= 1
                return strategy
        return FixStrategy.OTHER

    for index, ((propagation, effect, interior), project) in enumerate(
            zip(slots, projects)):
        strategy = pick_strategy(effect)
        skipped = SkippedCode.NOT_APPLICABLE
        if strategy is FixStrategy.CONDITIONALLY_SKIP:
            for code, left in skip_pool.items():
                if left > 0:
                    skip_pool[code] -= 1
                    skipped = code
                    break
        records.append(BugRecord(
            bug_id=f"mem-{index:03d}",
            project=project,
            kind=BugKind.MEMORY,
            fix_date=dates.next_date(project),
            source="cve" if project is Project.CVE else "github",
            effect=effect,
            propagation=propagation,
            effect_in_interior_unsafe=interior,
            fix_strategy=strategy,
            skipped_code=skipped,
        ))
    return records


def _build_blocking_bugs(dates: _DateAssigner) -> List[BugRecord]:
    records: List[BugRecord] = []
    # Per-primitive cause pools.
    cause_pools = {prim: [c for c, n in causes for _ in range(n)]
                   for prim, causes in BLOCKING_CAUSES.items()}
    shape_pool = [s for s, n in DOUBLE_LOCK_SHAPES for _ in range(n)]
    fix_pool = [f for f, n in BLOCKING_FIX_COUNTS for _ in range(n)]
    primitives = [BlockingPrimitive.MUTEX_RWLOCK, BlockingPrimitive.CONDVAR,
                  BlockingPrimitive.CHANNEL, BlockingPrimitive.ONCE,
                  BlockingPrimitive.OTHER]

    index = 0
    for project in TABLE1_PROJECTS:
        row = TABLE3_ROWS[project]
        for primitive, count in zip(primitives, row):
            for _ in range(count):
                cause = cause_pools[primitive].pop(0)
                shape = DoubleLockShape.NOT_APPLICABLE
                if cause is BlockingCause.DOUBLE_LOCK:
                    shape = shape_pool.pop(0)
                # Guard-lifetime fixes apply to double locks first.
                if cause is BlockingCause.DOUBLE_LOCK and \
                        BlockingFix.GUARD_LIFETIME in fix_pool:
                    fix_pool.remove(BlockingFix.GUARD_LIFETIME)
                    fix = BlockingFix.GUARD_LIFETIME
                elif BlockingFix.ADJUST_SYNC in fix_pool:
                    fix_pool.remove(BlockingFix.ADJUST_SYNC)
                    fix = BlockingFix.ADJUST_SYNC
                else:
                    fix_pool.remove(BlockingFix.OTHER)
                    fix = BlockingFix.OTHER
                records.append(BugRecord(
                    bug_id=f"blk-{index:03d}",
                    project=project,
                    kind=BugKind.BLOCKING,
                    fix_date=dates.next_date(project),
                    primitive=primitive,
                    blocking_cause=cause,
                    double_lock_shape=shape,
                    blocking_fix=fix,
                ))
                index += 1
    assert index == 59
    return records


def _build_nonblocking_bugs(dates: _DateAssigner) -> List[BugRecord]:
    records: List[BugRecord] = []
    interior_sharing_left = INTERIOR_UNSAFE_SHARING
    unsynchronized_left = UNSYNCHRONIZED_COUNT
    safe_code_left = IN_SAFE_CODE_COUNT
    interior_mut_left = INTERIOR_MUTABILITY_COUNT
    fix_pool = [f for f, n in NONBLOCKING_FIX_COUNTS for _ in range(n)]

    index = 0
    for project in TABLE1_PROJECTS:
        row = TABLE4_ROWS[project]
        for sharing, count in zip(TABLE4_COLUMNS, row):
            for _ in range(count):
                is_msg = sharing is DataSharing.MESSAGE
                interior_sharing = False
                if sharing.is_unsafe_sharing and interior_sharing_left > 0:
                    interior_sharing = True
                    interior_sharing_left -= 1
                # Unsynchronised bugs share via unsafe code (§6.2: "the
                # memory is shared using unsafe code" for all 17).
                synchronized = True
                if sharing.is_unsafe_sharing and unsynchronized_left > 0:
                    synchronized = False
                    unsynchronized_left -= 1
                # 25 of 41 manifest in safe code; safe-sharing and message
                # bugs are in safe code by construction, then unsafe-shared
                # ones fill the remainder.
                in_safe = False
                if (sharing.is_safe_sharing or is_msg) and safe_code_left > 0:
                    in_safe = True
                    safe_code_left -= 1
                interior_mut = False
                if sharing in (DataSharing.ATOMIC, DataSharing.MUTEX,
                               DataSharing.SYNC_TRAIT, DataSharing.POINTER) \
                        and interior_mut_left > 0:
                    interior_mut = True
                    interior_mut_left -= 1
                if is_msg:
                    fix = None
                    issue = NonblockingIssue.MESSAGE_ORDER
                else:
                    fix = fix_pool.pop(0) if fix_pool else None
                    if fix is NonblockingFix.ENFORCE_ATOMICITY:
                        issue = NonblockingIssue.ATOMICITY_VIOLATION
                    elif fix is NonblockingFix.ENFORCE_ORDER:
                        issue = NonblockingIssue.ORDER_VIOLATION
                    else:
                        issue = NonblockingIssue.DATA_RACE
                records.append(BugRecord(
                    bug_id=f"nblk-{index:03d}",
                    project=project,
                    kind=BugKind.NON_BLOCKING,
                    fix_date=dates.next_date(project),
                    sharing=sharing,
                    issue=issue,
                    in_safe_code=in_safe,
                    synchronized=synchronized,
                    interior_unsafe_sharing=interior_sharing,
                    interior_mutability=interior_mut,
                    nonblocking_fix=fix,
                ))
                index += 1
    # Top up the in-safe-code count from safe-sharing records if the
    # structural preference did not exhaust the quota.
    if safe_code_left > 0:
        for record in records:
            if safe_code_left == 0:
                break
            if not record.in_safe_code and record.sharing is not None \
                    and not record.sharing.is_unsafe_sharing:
                record.in_safe_code = True
                safe_code_left -= 1
        for record in records:
            if safe_code_left == 0:
                break
            if not record.in_safe_code:
                record.in_safe_code = True
                safe_code_left -= 1
    assert index == 41
    return records


def _build_all() -> List[BugRecord]:
    dates = _DateAssigner()
    records = (_build_memory_bugs(dates) + _build_blocking_bugs(dates)
               + _build_nonblocking_bugs(dates))
    return records


ALL_BUGS: List[BugRecord] = _build_all()
MEMORY_BUGS = [b for b in ALL_BUGS if b.kind is BugKind.MEMORY]
BLOCKING_BUGS = [b for b in ALL_BUGS if b.kind is BugKind.BLOCKING]
NONBLOCKING_BUGS = [b for b in ALL_BUGS if b.kind is BugKind.NON_BLOCKING]


# ---------------------------------------------------------------------------
# §4 sampled usages and removals, as records
# ---------------------------------------------------------------------------

@dataclass
class UsageRecord:
    """One sampled unsafe usage (§4.1)."""

    usage_id: str
    op_kind: UnsafeOpKind
    purpose: UnsafePurpose
    compiles_without_unsafe: bool = False
    is_constructor_label: bool = False


def _build_usage_sample() -> List[UsageRecord]:
    ops = [k for k, n in USAGE_OP_COUNTS for _ in range(n)]
    purposes = [p for p, n in USAGE_PURPOSE_COUNTS for _ in range(n)]
    assert len(ops) == len(purposes) == 600
    records = []
    stats = UNSAFE_USAGE_STATS
    no_error = stats["no_compile_error_removals"]
    constructors = 5
    for i, (op, purpose) in enumerate(zip(ops, purposes)):
        records.append(UsageRecord(
            usage_id=f"usage-{i:03d}", op_kind=op, purpose=purpose,
            compiles_without_unsafe=i < no_error,
            is_constructor_label=i < constructors))
    return records


USAGE_SAMPLE: List[UsageRecord] = _build_usage_sample()


@dataclass
class RemovalRecord:
    """One unsafe-removal case (§4.2)."""

    removal_id: str
    reason: UnsafeRemovalReason
    to_safe: bool
    interior_target: Optional[str] = None


def _build_removals() -> List[RemovalRecord]:
    reasons = [r for r, n in REMOVAL_REASON_COUNTS for _ in range(n)]
    assert len(reasons) == 130
    targets = [t for t, n in REMOVALS_TO_INTERIOR for _ in range(n)]
    records = []
    for i, reason in enumerate(reasons):
        to_safe = i < REMOVALS_TO_SAFE
        records.append(RemovalRecord(
            removal_id=f"removal-{i:03d}", reason=reason, to_safe=to_safe,
            interior_target=None if to_safe else targets[i - REMOVALS_TO_SAFE]))
    return records


UNSAFE_REMOVALS: List[RemovalRecord] = _build_removals()
