"""Label vocabularies for the empirical study — one enum per dimension the
paper classifies along."""

from __future__ import annotations

import enum


class Project(enum.Enum):
    """Studied software (Table 1), plus the vulnerability databases."""

    SERVO = "Servo"
    TOCK = "Tock"
    ETHEREUM = "Ethereum"
    TIKV = "TiKV"
    REDOX = "Redox"
    LIBRARIES = "libraries"
    CVE = "CVE/RustSec"

    @property
    def is_table1_row(self) -> bool:
        return self is not Project.CVE


#: Five studied applications in table order.
TABLE1_PROJECTS = [Project.SERVO, Project.TOCK, Project.ETHEREUM,
                   Project.TIKV, Project.REDOX, Project.LIBRARIES]


class BugKind(enum.Enum):
    MEMORY = "memory"
    BLOCKING = "blocking"
    NON_BLOCKING = "non-blocking"


class MemoryEffect(enum.Enum):
    """Table 2 columns."""

    BUFFER_OVERFLOW = "Buffer"
    NULL_DEREF = "Null"
    UNINITIALIZED = "Uninitialized"
    INVALID_FREE = "Invalid"
    USE_AFTER_FREE = "UAF"
    DOUBLE_FREE = "Double free"


class Propagation(enum.Enum):
    """Table 2 rows: where a bug's cause and effect sit w.r.t. unsafe."""

    SAFE = "safe"
    UNSAFE = "unsafe"
    SAFE_TO_UNSAFE = "safe -> unsafe"
    UNSAFE_TO_SAFE = "unsafe -> safe"


class FixStrategy(enum.Enum):
    """§5.2 memory-bug fixing strategies."""

    CONDITIONALLY_SKIP = "conditionally skip code"
    ADJUST_LIFETIME = "adjust lifetime"
    CHANGE_UNSAFE_OPERANDS = "change unsafe operands"
    OTHER = "other"


class SkippedCode(enum.Enum):
    """What the conditional-skip fixes skipped (§5.2)."""

    UNSAFE = "unsafe"
    INTERIOR_UNSAFE = "interior unsafe"
    SAFE = "safe"
    NOT_APPLICABLE = "n/a"


class BlockingPrimitive(enum.Enum):
    """Table 3 columns."""

    MUTEX_RWLOCK = "Mutex&Rwlock"
    CONDVAR = "Condvar"
    CHANNEL = "Channel"
    ONCE = "Once"
    OTHER = "Other"


class BlockingCause(enum.Enum):
    """§6.1 root causes."""

    DOUBLE_LOCK = "double lock"
    CONFLICTING_ORDER = "conflicting lock order"
    FORGOT_UNLOCK = "forgot unlock"
    WAIT_NO_NOTIFY = "wait without notify"
    WAIT_MUTUAL = "mutual wait"
    RECV_NO_SENDER = "recv with no sender"
    CHANNEL_MUTUAL = "channel mutual wait"
    RECV_HOLDING_LOCK = "recv while holding lock"
    SEND_FULL_CHANNEL = "send on full bounded channel"
    ONCE_RECURSION = "recursive call_once"
    BLOCKING_SYSCALL = "blocking platform API"
    BUSY_LOOP = "busy loop"
    JOIN = "blocked join"


class DoubleLockShape(enum.Enum):
    """Where the first lock of a double-lock sits (§6.1)."""

    MATCH_CONDITION = "first lock in match condition"
    IF_CONDITION = "first lock in if condition"
    OTHER = "other"
    NOT_APPLICABLE = "n/a"


class BlockingFix(enum.Enum):
    """§6.1 fix strategies for blocking bugs."""

    ADJUST_SYNC = "adjust synchronisation operations"
    GUARD_LIFETIME = "adjust lock-guard lifetime"
    OTHER = "other"


class DataSharing(enum.Enum):
    """Table 4 columns: how buggy code shares data across threads."""

    GLOBAL = "Global"               # static mutable variable (unsafe)
    POINTER = "Pointer"             # raw pointer passed across threads
    SYNC_TRAIT = "Sync"             # (unsafe) impl Sync
    OS_HARDWARE = "O.H."            # OS / hardware resources
    ATOMIC = "Atomic"               # safe: atomics
    MUTEX = "Mutex"                 # safe: Mutex / RwLock
    MESSAGE = "MSG"                 # message passing (not shared memory)

    @property
    def is_unsafe_sharing(self) -> bool:
        return self in (DataSharing.GLOBAL, DataSharing.POINTER,
                        DataSharing.SYNC_TRAIT, DataSharing.OS_HARDWARE)

    @property
    def is_safe_sharing(self) -> bool:
        return self in (DataSharing.ATOMIC, DataSharing.MUTEX)


class NonblockingIssue(enum.Enum):
    """§6.2 failure modes."""

    DATA_RACE = "data race"
    ATOMICITY_VIOLATION = "atomicity violation"
    ORDER_VIOLATION = "order violation"
    LIBRARY_MISUSE = "Rust library misuse"
    MESSAGE_ORDER = "message ordering"


class NonblockingFix(enum.Enum):
    """§6.2 fix strategies."""

    ENFORCE_ATOMICITY = "enforce atomic accesses"
    ENFORCE_ORDER = "enforce access order"
    AVOID_SHARING = "avoid shared accesses"
    LOCAL_COPY = "make a local copy"
    APP_LOGIC = "change application logic"


class UnsafeOpKind(enum.Enum):
    """§4.1 what unsafe code does."""

    MEMORY_OPERATION = "unsafe memory operation"
    UNSAFE_CALL = "call unsafe function"
    OTHER = "other"


class UnsafePurpose(enum.Enum):
    """§4.1 why unsafe code exists."""

    CODE_REUSE = "reuse existing code"
    PERFORMANCE = "performance"
    THREAD_SHARING = "share data across threads"
    OTHER_BYPASS = "other compiler-check bypassing"


class UnsafeRemovalReason(enum.Enum):
    """§4.2 why unsafe was removed."""

    MEMORY_SAFETY = "improve memory safety"
    CODE_STRUCTURE = "better code structure"
    THREAD_SAFETY = "improve thread safety"
    BUG_FIX = "bug fixing"
    UNNECESSARY = "remove unnecessary usage"


class InteriorUnsafeCheck(enum.Enum):
    """§4.3 how interior-unsafe functions ensure safety."""

    EXPLICIT_CHECK = "explicit condition check"
    INPUT_ENVIRONMENT = "correct inputs / environment"
