"""Source-level unsafe-usage scanner (the §4 study pipeline, over MiniRust).

Given parsed crates, counts and classifies:

* unsafe blocks / unsafe functions / unsafe traits / unsafe impls;
* what each unsafe region *does* (raw-pointer ops, unsafe calls, static
  mutation — the §4.1 operation classification);
* interior-unsafe functions (safe signature, unsafe inside) and whether
  they guard their unsafe code with explicit condition checks (the §4.3
  encapsulation audit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.mir.nodes import (
    Body, Program, RvalueKind, StatementKind, TerminatorKind,
)
from repro.study.taxonomy import UnsafeOpKind


@dataclass
class UnsafeCounts:
    blocks: int = 0
    functions: int = 0
    traits: int = 0
    impls: int = 0

    @property
    def total(self) -> int:
        return self.blocks + self.functions + self.traits + self.impls

    def add(self, other: "UnsafeCounts") -> "UnsafeCounts":
        return UnsafeCounts(self.blocks + other.blocks,
                            self.functions + other.functions,
                            self.traits + other.traits,
                            self.impls + other.impls)


@dataclass
class InteriorUnsafeAudit:
    """One interior-unsafe function and how it guards its unsafe code."""

    fn_key: str
    unsafe_statements: int = 0
    has_explicit_check: bool = False        # branch/assert dominating unsafe
    derefs_parameter_unchecked: bool = False


@dataclass
class ScanResult:
    counts: UnsafeCounts = field(default_factory=UnsafeCounts)
    #: §4.1 operation classification of unsafe statements.
    operations: Dict[UnsafeOpKind, int] = field(default_factory=dict)
    interior_unsafe_fns: List[InteriorUnsafeAudit] = field(
        default_factory=list)
    unsafe_fn_keys: List[str] = field(default_factory=list)

    @property
    def improperly_encapsulated(self) -> List[InteriorUnsafeAudit]:
        return [a for a in self.interior_unsafe_fns
                if a.derefs_parameter_unchecked and not a.has_explicit_check]

    def operation_shares(self) -> Dict[str, float]:
        total = sum(self.operations.values()) or 1
        return {kind.value: count / total
                for kind, count in self.operations.items()}


def count_unsafe_in_crate(crate: ast.Crate) -> UnsafeCounts:
    """Count syntactic unsafe markers in one parsed crate."""
    counts = UnsafeCounts()
    for item in crate.walk_items():
        if isinstance(item, ast.FnDef):
            if item.is_unsafe:
                counts.functions += 1
            counts.blocks += _count_unsafe_blocks(item.body)
        elif isinstance(item, ast.TraitDef):
            if item.is_unsafe:
                counts.traits += 1
            for fn in item.items:
                if fn.is_unsafe:
                    counts.functions += 1
                counts.blocks += _count_unsafe_blocks(fn.body)
        elif isinstance(item, ast.ImplBlock):
            if item.is_unsafe:
                counts.impls += 1
            for fn in item.items:
                if fn.is_unsafe:
                    counts.functions += 1
                counts.blocks += _count_unsafe_blocks(fn.body)
    return counts


def _count_unsafe_blocks(node) -> int:
    """Recursively count ``unsafe { }`` blocks under an AST node."""
    if node is None:
        return 0
    count = 0
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Block) and current.is_unsafe:
            count += 1
        if isinstance(current, ast.Node):
            for value in vars(current).values():
                if isinstance(value, ast.Node):
                    stack.append(value)
                elif isinstance(value, list):
                    for element in value:
                        if isinstance(element, ast.Node):
                            stack.append(element)
                        elif isinstance(element, tuple):
                            stack.extend(e for e in element
                                         if isinstance(e, ast.Node))
    return count


# ---------------------------------------------------------------------------
# MIR-level classification
# ---------------------------------------------------------------------------

def classify_unsafe_operations(body: Body) -> Dict[UnsafeOpKind, int]:
    """§4.1: what do the unsafe statements of this body do?"""
    out: Dict[UnsafeOpKind, int] = {}

    def bump(kind: UnsafeOpKind) -> None:
        out[kind] = out.get(kind, 0) + 1

    for _bb, _i, stmt in body.iter_statements():
        if not stmt.in_unsafe:
            continue
        if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None:
            rv = stmt.rvalue
            memory_like = (
                stmt.place.has_deref
                or rv.kind is RvalueKind.CAST
                or rv.kind is RvalueKind.ADDRESS_OF
                or any(op.place is not None and op.place.has_deref
                       for op in rv.operands))
            static_access = (
                (body.locals[stmt.place.local].name or "").startswith("static:")
                or any(op.place is not None and
                       (body.locals[op.place.local].name or "").startswith("static:")
                       for op in rv.operands if op.place is not None))
            if memory_like or static_access:
                bump(UnsafeOpKind.MEMORY_OPERATION)
            # Plain temp-to-temp copies inside an unsafe region are
            # compiler plumbing, not "unsafe operations" — skipped.
    for _bb, term in body.iter_terminators():
        if term.kind is TerminatorKind.CALL and term.in_unsafe \
                and term.func is not None:
            if term.func.is_unsafe or \
                    term.func.kind.value in ("user", "unknown"):
                bump(UnsafeOpKind.UNSAFE_CALL)
            elif term.func.builtin_op is not None and \
                    term.func.builtin_op.value.startswith(("ptr::", "alloc",
                                                           "dealloc",
                                                           "mem::")):
                bump(UnsafeOpKind.MEMORY_OPERATION)
            else:
                bump(UnsafeOpKind.OTHER)
    return out


def audit_interior_unsafe(body: Body) -> Optional[InteriorUnsafeAudit]:
    """§4.3: audit one interior-unsafe function's encapsulation."""
    if not body.has_interior_unsafe:
        return None
    audit = InteriorUnsafeAudit(fn_key=body.key)
    audit.unsafe_statements = sum(1 for _b, _i, s in body.iter_statements()
                                  if s.in_unsafe)
    # Explicit check: a SwitchInt or Assert in a block *before* the first
    # unsafe statement's block.
    first_unsafe_block = None
    for bb, _i, stmt in body.iter_statements():
        if stmt.in_unsafe:
            first_unsafe_block = bb
            break
    if first_unsafe_block is None:
        for bb, term in body.iter_terminators():
            if term.in_unsafe:
                first_unsafe_block = bb
                break
    if first_unsafe_block is not None:
        for bb, term in body.iter_terminators():
            if bb < first_unsafe_block and term.kind in (
                    TerminatorKind.SWITCH_INT, TerminatorKind.ASSERT):
                audit.has_explicit_check = True
                break
    # Unchecked parameter deref: an unsafe deref whose base local is an
    # argument (directly or through one copy).
    arg_locals = {l.index for l in body.locals if l.is_arg}
    derived = set(arg_locals)
    for _bb, _i, stmt in body.iter_statements():
        if stmt.kind is StatementKind.ASSIGN and stmt.rvalue is not None \
                and stmt.place.is_local \
                and stmt.rvalue.kind in (RvalueKind.USE, RvalueKind.CAST):
            op = stmt.rvalue.operands[0]
            if op.place is not None and op.place.local in derived:
                derived.add(stmt.place.local)
    for _bb, _i, stmt in body.iter_statements():
        if not stmt.in_unsafe or stmt.kind is not StatementKind.ASSIGN:
            continue
        places = [stmt.place] + [op.place for op in stmt.rvalue.operands
                                 if op.place is not None]
        for place in places:
            if place is not None and place.has_deref \
                    and place.local in derived:
                audit.derefs_parameter_unchecked = True
    if audit.has_explicit_check:
        audit.derefs_parameter_unchecked = False
    return audit


def scan_program(program: Program,
                 crate: Optional[ast.Crate] = None) -> ScanResult:
    """Full §4 scan of a lowered program (plus its AST, when available)."""
    result = ScanResult()
    if crate is not None:
        result.counts = count_unsafe_in_crate(crate)
    for body in program.bodies():
        for kind, count in classify_unsafe_operations(body).items():
            result.operations[kind] = result.operations.get(kind, 0) + count
        if body.is_unsafe_fn:
            result.unsafe_fn_keys.append(body.key)
        audit = audit_interior_unsafe(body)
        if audit is not None:
            result.interior_unsafe_fns.append(audit)
    return result


def scan_sources(sources: Iterable[Tuple[str, str]]) -> ScanResult:
    """Scan many (name, source) crates, merging the results."""
    from repro.driver import compile_source
    merged = ScanResult()
    for name, text in sources:
        compiled = compile_source(text, name=name)
        partial = scan_program(compiled.program, compiled.crate)
        merged.counts = merged.counts.add(partial.counts)
        for kind, count in partial.operations.items():
            merged.operations[kind] = merged.operations.get(kind, 0) + count
        merged.interior_unsafe_fns.extend(partial.interior_unsafe_fns)
        merged.unsafe_fn_keys.extend(partial.unsafe_fn_keys)
    return merged
