"""The empirical-study pipeline.

Encodes the paper's labelled datasets (bugs, unsafe usages, unsafe
removals, interior-unsafe audits) and the aggregation code that
regenerates every table and figure of the evaluation:

* Table 1 — studied applications and bug counts;
* Table 2 — memory-bug categories (safety propagation × effect);
* Table 3 — blocking-bug synchronisation primitives per project;
* Table 4 — data-sharing methods of non-blocking bugs per project;
* Figure 1 — Rust release history (feature churn and KLOC);
* Figure 2 — studied-bug fix dates per quarter;
* §4 statistics — unsafe usage / removal / encapsulation numbers;
* §5.2 / §6.1 / §6.2 statistics — root causes and fix strategies.

The per-bug records are *reconstructed* from the paper's published
marginals: every aggregate the paper reports is reproduced exactly; joint
distributions the paper does not report (e.g. which memory-bug effect
occurred in which project) are filled in deterministically and documented
as such in EXPERIMENTS.md.
"""

from repro.study.taxonomy import (
    BlockingCause, BlockingPrimitive, BugKind, DataSharing, FixStrategy,
    MemoryEffect, NonblockingFix, NonblockingIssue, Project, Propagation,
    UnsafePurpose, UnsafeRemovalReason,
)
from repro.study.dataset import (
    ALL_BUGS, BLOCKING_BUGS, BugRecord, MEMORY_BUGS, NONBLOCKING_BUGS,
    UNSAFE_REMOVALS, UNSAFE_USAGE_STATS, USAGE_SAMPLE,
)
from repro.study.tables import (
    section4_interior_unsafe, section4_unsafe_usage, section5_fix_strategies,
    section6_blocking_causes, section6_blocking_fixes,
    section6_nonblocking_stats, table1_studied_software,
    table2_memory_categories, table3_blocking_sync, table4_data_sharing,
    render_table,
)
from repro.study.figures import fig1_rust_history, fig2_bug_fix_timeline
from repro.study.insights import INSIGHTS, SUGGESTIONS, verify_all_insights

__all__ = [
    "BlockingCause", "BlockingPrimitive", "BugKind", "DataSharing",
    "FixStrategy", "MemoryEffect", "NonblockingFix", "NonblockingIssue",
    "Project", "Propagation", "UnsafePurpose", "UnsafeRemovalReason",
    "ALL_BUGS", "BLOCKING_BUGS", "BugRecord", "MEMORY_BUGS",
    "NONBLOCKING_BUGS", "UNSAFE_REMOVALS", "UNSAFE_USAGE_STATS",
    "USAGE_SAMPLE", "section4_interior_unsafe", "section4_unsafe_usage",
    "section5_fix_strategies", "section6_blocking_causes",
    "section6_blocking_fixes", "section6_nonblocking_stats",
    "table1_studied_software", "table2_memory_categories",
    "table3_blocking_sync", "table4_data_sharing", "render_table",
    "fig1_rust_history", "fig2_bug_fix_timeline",
    "INSIGHTS", "SUGGESTIONS", "verify_all_insights",
]
