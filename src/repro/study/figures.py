"""Figure series generators.

* Figure 1 — Rust's release history: feature changes and total LOC per
  release, 2012-2019.  The series is synthesised to match the paper's
  qualitative description ("Rust went through heavy changes in the first
  four years since its release, and it has been stable since Jan 2016")
  and the figure's visible envelope (feature churn peaking ~2500 around
  2014-2015 then collapsing; KLOC growing towards ~800K).
* Figure 2 — when the studied bugs were fixed: per-project counts per
  three-month bucket, derived from the reconstructed records' fix dates
  (which honour the paper's "145 of the 170 bugs were fixed after 2016").
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.study.dataset import ALL_BUGS, BugRecord
from repro.study.taxonomy import Project


@dataclass(frozen=True)
class RustRelease:
    version: str
    date: datetime.date
    feature_changes: int
    kloc: int


def _d(year: int, month: int, day: int = 1) -> datetime.date:
    return datetime.date(year, month, day)


#: Synthesised release history following the paper's Figure 1 envelope.
RUST_RELEASES: List[RustRelease] = [
    RustRelease("0.1", _d(2012, 1), 900, 120),
    RustRelease("0.2", _d(2012, 3), 1100, 135),
    RustRelease("0.3", _d(2012, 7), 1400, 150),
    RustRelease("0.4", _d(2012, 10), 1300, 165),
    RustRelease("0.5", _d(2012, 12), 1200, 180),
    RustRelease("0.6", _d(2013, 4), 1700, 210),
    RustRelease("0.7", _d(2013, 7), 2000, 240),
    RustRelease("0.8", _d(2013, 9), 2200, 270),
    RustRelease("0.9", _d(2014, 1), 2400, 300),
    RustRelease("0.10", _d(2014, 4), 2500, 330),
    RustRelease("0.11", _d(2014, 7), 2300, 360),
    RustRelease("0.12", _d(2014, 10), 2200, 390),
    RustRelease("1.0-alpha", _d(2015, 1), 2100, 420),
    RustRelease("1.0", _d(2015, 5), 1800, 450),
    RustRelease("1.3", _d(2015, 9), 1100, 480),
    RustRelease("1.5", _d(2015, 12), 700, 500),
    RustRelease("1.6", _d(2016, 1), 260, 510),
    RustRelease("1.9", _d(2016, 5), 220, 530),
    RustRelease("1.13", _d(2016, 11), 200, 560),
    RustRelease("1.17", _d(2017, 4), 180, 590),
    RustRelease("1.21", _d(2017, 10), 170, 620),
    RustRelease("1.25", _d(2018, 3), 160, 660),
    RustRelease("1.30", _d(2018, 10), 170, 700),
    RustRelease("1.34", _d(2019, 4), 150, 750),
    RustRelease("1.39", _d(2019, 11), 140, 800),
]

#: Rust stabilised (per the paper) with 1.6.0.
STABLE_SINCE = _d(2016, 1)


def fig1_rust_history() -> List[RustRelease]:
    """Figure 1's two series, one row per release."""
    return list(RUST_RELEASES)


def fig1_series() -> Tuple[List[datetime.date], List[int], List[int]]:
    """Convenience: (dates, feature-change series, KLOC series)."""
    dates = [r.date for r in RUST_RELEASES]
    changes = [r.feature_changes for r in RUST_RELEASES]
    kloc = [r.kloc for r in RUST_RELEASES]
    return dates, changes, kloc


def quarter_of(date: datetime.date) -> str:
    return f"{date.year}Q{(date.month - 1) // 3 + 1}"


def fig2_bug_fix_timeline(bugs: Optional[List[BugRecord]] = None
                          ) -> Dict[str, Dict[str, int]]:
    """Figure 2: per project, the number of studied bugs fixed in each
    three-month period."""
    bugs = ALL_BUGS if bugs is None else bugs
    out: Dict[str, Dict[str, int]] = {}
    for bug in bugs:
        series = out.setdefault(bug.project.value, {})
        bucket = quarter_of(bug.fix_date)
        series[bucket] = series.get(bucket, 0) + 1
    return {project: dict(sorted(series.items()))
            for project, series in out.items()}


def fig2_fixed_after_2016(bugs: Optional[List[BugRecord]] = None) -> int:
    bugs = ALL_BUGS if bugs is None else bugs
    return sum(1 for b in bugs if b.fix_date >= datetime.date(2016, 1, 1))
