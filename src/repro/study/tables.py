"""Table generators: every table and in-text statistic of the evaluation.

Each ``table*`` function aggregates the reconstructed records and returns
plain data structures (lists of rows), plus a ``render_table`` helper that
prints them the way the paper lays them out.  The benchmark harness under
``benchmarks/`` calls these and prints the same rows the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.study.dataset import (
    ALL_BUGS, BLOCKING_BUGS, CVE_MEMORY_BUGS, INTERIOR_CHECK_COUNTS,
    INTERIOR_CONDITION_COUNTS, MEMORY_BUGS, NONBLOCKING_BUGS,
    REMOVAL_COMMITS, REMOVALS_TO_INTERIOR, REMOVALS_TO_SAFE,
    TABLE1_METADATA, UNSAFE_REMOVALS, UNSAFE_USAGE_STATS, USAGE_SAMPLE,
    BugRecord,
)
from repro.study.taxonomy import (
    TABLE1_PROJECTS, BlockingCause, BlockingFix, BlockingPrimitive, BugKind,
    DataSharing, DoubleLockShape, FixStrategy, MemoryEffect, NonblockingFix,
    Project, Propagation, SkippedCode, UnsafeOpKind, UnsafePurpose,
    UnsafeRemovalReason,
)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width text rendering used by the benches and the CLI."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def table1_studied_software(bugs: Optional[List[BugRecord]] = None) -> List[dict]:
    """Table 1: studied software with metadata and per-kind bug counts."""
    bugs = ALL_BUGS if bugs is None else bugs
    rows = []
    for project in TABLE1_PROJECTS:
        meta = TABLE1_METADATA[project]
        mine = [b for b in bugs if b.project is project]
        rows.append({
            "software": project.value,
            "start": meta["start"],
            "stars": meta["stars"],
            "commits": meta["commits"],
            "loc_k": meta["loc_k"],
            "mem": sum(1 for b in mine if b.kind is BugKind.MEMORY),
            "blk": sum(1 for b in mine if b.kind is BugKind.BLOCKING),
            "nblk": sum(1 for b in mine if b.kind is BugKind.NON_BLOCKING),
        })
    return rows


def table1_totals(bugs: Optional[List[BugRecord]] = None) -> Dict[str, int]:
    bugs = ALL_BUGS if bugs is None else bugs
    return {
        "memory": sum(1 for b in bugs if b.kind is BugKind.MEMORY),
        "blocking": sum(1 for b in bugs if b.kind is BugKind.BLOCKING),
        "non_blocking": sum(1 for b in bugs
                            if b.kind is BugKind.NON_BLOCKING),
        "cve_memory": sum(1 for b in bugs if b.project is Project.CVE),
        "total": len(bugs),
    }


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

TABLE2_EFFECT_ORDER = [MemoryEffect.BUFFER_OVERFLOW, MemoryEffect.NULL_DEREF,
                       MemoryEffect.UNINITIALIZED, MemoryEffect.INVALID_FREE,
                       MemoryEffect.USE_AFTER_FREE, MemoryEffect.DOUBLE_FREE]
TABLE2_ROW_ORDER = [Propagation.SAFE, Propagation.UNSAFE,
                    Propagation.SAFE_TO_UNSAFE, Propagation.UNSAFE_TO_SAFE]


def table2_memory_categories(bugs: Optional[List[BugRecord]] = None) -> List[dict]:
    """Table 2: memory bugs by propagation (rows) × effect (columns);
    each cell is ``(count, count-with-effect-in-interior-unsafe)``."""
    bugs = MEMORY_BUGS if bugs is None else \
        [b for b in bugs if b.kind is BugKind.MEMORY]
    rows = []
    for propagation in TABLE2_ROW_ORDER:
        row = {"category": propagation.value}
        total = 0
        for effect in TABLE2_EFFECT_ORDER:
            cell = [b for b in bugs if b.propagation is propagation
                    and b.effect is effect]
            interior = sum(1 for b in cell if b.effect_in_interior_unsafe)
            row[effect.value] = (len(cell), interior)
            total += len(cell)
        row["total"] = total
        rows.append(row)
    return rows


def table2_effect_totals(bugs: Optional[List[BugRecord]] = None
                         ) -> Dict[str, int]:
    bugs = MEMORY_BUGS if bugs is None else bugs
    return {effect.value: sum(1 for b in bugs if b.effect is effect)
            for effect in TABLE2_EFFECT_ORDER}


# ---------------------------------------------------------------------------
# §5.2 fix strategies
# ---------------------------------------------------------------------------

def section5_fix_strategies(bugs: Optional[List[BugRecord]] = None) -> dict:
    bugs = MEMORY_BUGS if bugs is None else bugs
    out: Dict[str, object] = {}
    for strategy in FixStrategy:
        out[strategy.value] = sum(1 for b in bugs
                                  if b.fix_strategy is strategy)
    out["skip breakdown"] = {
        skipped.value: sum(1 for b in bugs if b.skipped_code is skipped)
        for skipped in (SkippedCode.UNSAFE, SkippedCode.INTERIOR_UNSAFE,
                        SkippedCode.SAFE)
    }
    return out


# ---------------------------------------------------------------------------
# Table 3 and §6.1
# ---------------------------------------------------------------------------

TABLE3_COLUMNS = [BlockingPrimitive.MUTEX_RWLOCK, BlockingPrimitive.CONDVAR,
                  BlockingPrimitive.CHANNEL, BlockingPrimitive.ONCE,
                  BlockingPrimitive.OTHER]


def table3_blocking_sync(bugs: Optional[List[BugRecord]] = None) -> List[dict]:
    """Table 3: blocking bugs by synchronisation primitive per project."""
    bugs = BLOCKING_BUGS if bugs is None else \
        [b for b in bugs if b.kind is BugKind.BLOCKING]
    rows = []
    for project in TABLE1_PROJECTS:
        mine = [b for b in bugs if b.project is project]
        row = {"software": project.value}
        for primitive in TABLE3_COLUMNS:
            row[primitive.value] = sum(1 for b in mine
                                       if b.primitive is primitive)
        row["total"] = len(mine)
        rows.append(row)
    totals = {"software": "Total"}
    for primitive in TABLE3_COLUMNS:
        totals[primitive.value] = sum(1 for b in bugs
                                      if b.primitive is primitive)
    totals["total"] = len(bugs)
    rows.append(totals)
    return rows


def section6_blocking_causes(bugs: Optional[List[BugRecord]] = None) -> dict:
    bugs = BLOCKING_BUGS if bugs is None else bugs
    causes = {cause.value: sum(1 for b in bugs if b.blocking_cause is cause)
              for cause in BlockingCause}
    shapes = {shape.value: sum(1 for b in bugs
                               if b.double_lock_shape is shape)
              for shape in (DoubleLockShape.MATCH_CONDITION,
                            DoubleLockShape.IF_CONDITION,
                            DoubleLockShape.OTHER)}
    return {"causes": {k: v for k, v in causes.items() if v},
            "double_lock_shapes": shapes}


def section6_blocking_fixes(bugs: Optional[List[BugRecord]] = None) -> dict:
    bugs = BLOCKING_BUGS if bugs is None else bugs
    by_fix = {fix.value: sum(1 for b in bugs if b.blocking_fix is fix)
              for fix in BlockingFix}
    by_fix["adjusted synchronisation (total)"] = (
        by_fix[BlockingFix.ADJUST_SYNC.value]
        + by_fix[BlockingFix.GUARD_LIFETIME.value])
    return by_fix


# ---------------------------------------------------------------------------
# Table 4 and §6.2
# ---------------------------------------------------------------------------

TABLE4_COLUMN_ORDER = [DataSharing.GLOBAL, DataSharing.POINTER,
                       DataSharing.SYNC_TRAIT, DataSharing.OS_HARDWARE,
                       DataSharing.ATOMIC, DataSharing.MUTEX,
                       DataSharing.MESSAGE]


def table4_data_sharing(bugs: Optional[List[BugRecord]] = None) -> List[dict]:
    """Table 4: how the buggy code of non-blocking bugs shares data."""
    bugs = NONBLOCKING_BUGS if bugs is None else \
        [b for b in bugs if b.kind is BugKind.NON_BLOCKING]
    rows = []
    for project in TABLE1_PROJECTS:
        mine = [b for b in bugs if b.project is project]
        row = {"software": project.value}
        for sharing in TABLE4_COLUMN_ORDER:
            row[sharing.value] = sum(1 for b in mine if b.sharing is sharing)
        row["total"] = len(mine)
        rows.append(row)
    totals = {"software": "Total"}
    for sharing in TABLE4_COLUMN_ORDER:
        totals[sharing.value] = sum(1 for b in bugs if b.sharing is sharing)
    totals["total"] = len(bugs)
    rows.append(totals)
    return rows


def section6_nonblocking_stats(bugs: Optional[List[BugRecord]] = None) -> dict:
    bugs = NONBLOCKING_BUGS if bugs is None else bugs
    shared = [b for b in bugs if b.sharing is not DataSharing.MESSAGE]
    return {
        "total": len(bugs),
        "message_passing": sum(1 for b in bugs
                               if b.sharing is DataSharing.MESSAGE),
        "shared_memory": len(shared),
        "share_via_unsafe": sum(1 for b in shared
                                if b.sharing.is_unsafe_sharing),
        "share_via_interior_unsafe": sum(1 for b in shared
                                         if b.interior_unsafe_sharing),
        "share_via_safe": sum(1 for b in shared
                              if b.sharing.is_safe_sharing),
        "unsynchronized": sum(1 for b in shared if not b.synchronized),
        "synchronized_but_wrong": sum(1 for b in shared if b.synchronized),
        "in_safe_code": sum(1 for b in bugs if b.in_safe_code),
        "interior_mutability": sum(1 for b in bugs if b.interior_mutability),
        "fixes": {fix.value: sum(1 for b in bugs
                                 if b.nonblocking_fix is fix)
                  for fix in NonblockingFix},
    }


# ---------------------------------------------------------------------------
# §4 statistics
# ---------------------------------------------------------------------------

def section4_unsafe_usage() -> dict:
    """§4 headline numbers plus the 600-usage sample breakdown."""
    stats = dict(UNSAFE_USAGE_STATS)
    ops = {kind.value: sum(1 for u in USAGE_SAMPLE if u.op_kind is kind)
           for kind in UnsafeOpKind}
    purposes = {p.value: sum(1 for u in USAGE_SAMPLE if u.purpose is p)
                for p in UnsafePurpose}
    total = len(USAGE_SAMPLE)
    stats["operations"] = ops
    stats["operations_pct"] = {k: round(100 * v / total)
                               for k, v in ops.items()}
    stats["purposes"] = purposes
    stats["purposes_pct"] = {k: round(100 * v / total)
                             for k, v in purposes.items()}
    stats["no_compile_error"] = sum(1 for u in USAGE_SAMPLE
                                    if u.compiles_without_unsafe)
    return stats


def section4_removals() -> dict:
    """§4.2: the 130 unsafe-removal cases."""
    total = len(UNSAFE_REMOVALS)
    reasons = {r.value: sum(1 for u in UNSAFE_REMOVALS if u.reason is r)
               for r in UnsafeRemovalReason}
    return {
        "total": total,
        "commits": REMOVAL_COMMITS,
        "reasons": reasons,
        "reasons_pct": {k: round(100 * v / total)
                        for k, v in reasons.items()},
        "to_safe": sum(1 for u in UNSAFE_REMOVALS if u.to_safe),
        "to_interior": {t: n for t, n in REMOVALS_TO_INTERIOR},
    }


def section4_interior_unsafe() -> dict:
    """§4.3: the interior-unsafe encapsulation audit."""
    total = UNSAFE_USAGE_STATS["std_interior_sample"]
    conditions = dict(INTERIOR_CONDITION_COUNTS)
    checks = {c.value: n for c, n in INTERIOR_CHECK_COUNTS}
    return {
        "std_sample": total,
        "app_sample": UNSAFE_USAGE_STATS["app_interior_sample"],
        "conditions": conditions,
        "conditions_pct": {k: round(100 * v / total)
                           for k, v in conditions.items()},
        "checks": checks,
        "checks_pct": {k: round(100 * v / total) for k, v in checks.items()},
        "improper": UNSAFE_USAGE_STATS["improper_encapsulations"],
        "improper_std": UNSAFE_USAGE_STATS["improper_std"],
        "improper_apps": UNSAFE_USAGE_STATS["improper_apps"],
    }
