"""The paper's 11 insights and 8 suggestions, as checkable claims.

Each :class:`Insight` carries the paper's wording plus an ``evidence``
function that re-derives the supporting statistic from the reconstructed
datasets.  ``verify_all_insights()`` returns the full scorecard — used by
tests and the `examples/study_report.py` walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.study import dataset, tables
from repro.study.taxonomy import (
    BlockingCause, BugKind, DataSharing, FixStrategy, Propagation,
    UnsafePurpose,
)


@dataclass(frozen=True)
class Insight:
    number: int
    text: str
    evidence: Callable[[], Tuple[bool, str]]


def _i1() -> Tuple[bool, str]:
    stats = tables.section4_unsafe_usage()
    good = (stats["purposes_pct"]["reuse existing code"]
            + stats["purposes_pct"]["performance"]
            + stats["purposes_pct"]["share data across threads"])
    return good >= 75, (f"{good}% of sampled unsafe usages have concrete "
                        f"reasons (reuse/performance/sharing)")


def _i2() -> Tuple[bool, str]:
    removals = tables.section4_removals()
    interior = removals["total"] - removals["to_safe"]
    return interior > removals["to_safe"], \
        (f"{interior}/130 unsafe removals encapsulate into interior-unsafe "
         f"functions (vs {removals['to_safe']} full rewrites)")


def _i3() -> Tuple[bool, str]:
    audit = tables.section4_interior_unsafe()
    pct = audit["checks_pct"]["correct inputs / environment"]
    return pct > 50, (f"{pct}% of std interior-unsafe functions rely on "
                      f"correct inputs/environments, not explicit checks")


def _i4() -> Tuple[bool, str]:
    involve_unsafe = sum(1 for b in dataset.MEMORY_BUGS
                         if b.propagation is not Propagation.SAFE)
    return involve_unsafe == 69, \
        f"{involve_unsafe}/70 memory bugs involve unsafe code"


def _i5() -> Tuple[bool, str]:
    fixes = tables.section5_fix_strategies()
    changed = fixes["conditionally skip code"] + \
        fixes["change unsafe operands"]
    return changed > 35, (f"{changed}/70 memory bugs fixed by changing or "
                          f"conditionally skipping unsafe code")


def _i6() -> Tuple[bool, str]:
    causes = tables.section6_blocking_causes()["causes"]
    lifetime_linked = causes["double lock"]
    return lifetime_linked >= 30, \
        (f"{lifetime_linked}/59 blocking bugs are double locks rooted in "
         f"guard-lifetime misunderstanding")


def _i7() -> Tuple[bool, str]:
    stats = tables.section6_nonblocking_stats()
    patterns = stats["share_via_unsafe"] + stats["share_via_safe"]
    return patterns == 38, (f"all {patterns} shared-memory non-blocking "
                            f"bugs fall into the Table 4 sharing patterns "
                            f"(the data-race detector's thread-escape "
                            f"doors: spawn captures, Arc clones, channels)")


def _i8() -> Tuple[bool, str]:
    stats = tables.section6_nonblocking_stats()
    return stats["in_safe_code"] == 25, \
        (f"{stats['in_safe_code']}/41 non-blocking bugs manifest in safe "
         f"code even though sharing may be unsafe")


def _i9() -> Tuple[bool, str]:
    # Library-misuse bugs are captured by runtime checks (RefCell panics,
    # poisoning): the dataset marks 7 such bugs via the issue taxonomy.
    library_linked = sum(
        1 for b in dataset.NONBLOCKING_BUGS
        if b.sharing is DataSharing.MESSAGE or b.interior_mutability)
    return library_linked >= 7, \
        (f"{library_linked} non-blocking bugs involve Rust-unique "
         f"libraries/interior mutability (runtime checks catch misuse)")


def _i10() -> Tuple[bool, str]:
    stats = tables.section6_nonblocking_stats()
    return stats["interior_mutability"] == 13, \
        (f"{stats['interior_mutability']} bugs mutate through immutable "
         f"borrows — '&mut self' interfaces would let the compiler reject "
         f"them")


def _i11() -> Tuple[bool, str]:
    fixes = tables.section6_nonblocking_stats()["fixes"]
    traditional = fixes["enforce atomic accesses"] + \
        fixes["enforce access order"]
    return traditional == 30, \
        (f"{traditional}/38 non-blocking fixes use traditional "
         f"atomicity/ordering strategies (existing auto-fixers apply)")


INSIGHTS: List[Insight] = [
    Insight(1, "Most unsafe usages are for good or unavoidable reasons.",
            _i1),
    Insight(2, "Interior unsafe is a good way to encapsulate unsafe code.",
            _i2),
    Insight(3, "Some safety conditions of unsafe code are difficult to "
               "check; interior unsafe often relies on correct inputs and "
               "environments.", _i3),
    Insight(4, "Rust's safety mechanisms are very effective in preventing "
               "memory bugs: all memory-safety issues involve unsafe code.",
            _i4),
    Insight(5, "More than half of memory-safety bugs were fixed by "
               "changing or conditionally skipping unsafe code.", _i5),
    Insight(6, "Lacking good understanding in Rust's lifetime rules is a "
               "common cause for many blocking bugs.", _i6),
    Insight(7, "There are patterns of how data is (improperly) shared, "
               "useful for bug detection tools.", _i7),
    Insight(8, "How data is shared is not necessarily associated with how "
               "non-blocking bugs happen; sharing can be unsafe while the "
               "bug is in safe code.", _i8),
    Insight(9, "Misusing Rust's unique libraries is one major root cause "
               "of non-blocking bugs; Rust's runtime checks capture them.",
            _i9),
    Insight(10, "The design of APIs (mutable vs immutable borrow) heavily "
                "impacts the compiler's capability of identifying bugs.",
            _i10),
    Insight(11, "Fixing strategies of Rust concurrency bugs are similar "
                "to traditional languages; existing auto-fixers likely "
                "apply.", _i11),
]

SUGGESTIONS: List[str] = [
    "S1: export only the source of unsafety as the unsafe interface, "
    "minimising inspection surface.",
    "S2: encapsulate unsafe code in interior-unsafe functions before "
    "exposing unsafe interfaces.",
    "S3: if a function's safety depends on how it is used, mark it unsafe, "
    "not interior unsafe.",
    "S4: restrict interior mutability; audit interior-mutability functions "
    "that return references.",
    "S5: memory-bug detectors can ignore safe code unrelated to unsafe "
    "code (our UAF detector only checks raw-pointer uses).",
    "S6: IDEs should visualise lifetimes and implicit-unlock locations "
    "(implemented: repro.tools.annotate).",
    "S7: Rust should add an explicit unlock API on Mutex guards "
    "(implemented: MiniRust guards support `.unlock()`).",
    "S8: review internal mutual exclusion for interior-mutability "
    "functions of Sync structs (implemented: the sync-unsync-write "
    "detector).",
]


def verify_all_insights() -> Dict[int, Tuple[bool, str]]:
    """Run every insight's evidence function; all should hold."""
    return {i.number: i.evidence() for i in INSIGHTS}
