"""Unwind-aware CFG, panic-effects summaries, and the CVE-class
detectors (panic-safety / bad-drop / uninit-exposure)."""

import pickle

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import SummaryEngine
from repro.analysis.panic import (
    ensure_unwind_edges, may_unwind, terminator_panic_source,
    unwind_drop_order,
)
from repro.corpus.benign import BENIGN_TEMPLATES
from repro.corpus.inject import BUG_TEMPLATES
from repro.detectors.registry import run_detectors
from repro.driver import compile_source
from repro.mir.interp import ScheduleConfig, run_program
from repro.mir.nodes import StatementKind, TerminatorKind

PANIC_WINDOW = """
fn bug_window(flag: bool) -> i32 {
    let mut slot = vec![1, 2, 3];
    unsafe {
        let tmp = ptr::read(&slot);
        if flag {
            panic!("mid-update");
        }
        ptr::write(&mut slot, tmp);
    }
    slot.len()
}
"""

COMPOSED_PANIC = """
fn inner(x: i32) -> i32 {
    if x > 3 {
        panic!("too big");
    }
    x
}
fn outer(x: i32) -> i32 {
    let v = vec![1, 2];
    inner(x) + v.len()
}
fn calm(x: i32) -> i32 {
    x + 1
}
"""


def _body(src, key):
    program = compile_source(src).program
    return program, program.body(key)


def _run(src, **config_kwargs):
    program = compile_source(src).program
    return run_detectors(program,
                         config=AnalysisConfig(**config_kwargs))


class TestUnwindLowering:
    def test_pads_edges_and_resume(self):
        _program, body = _body(PANIC_WINDOW, "bug_window")
        assert not any(b.cleanup for b in body.blocks)
        ensure_unwind_edges(body)
        pads = [b for b in body.blocks if b.cleanup]
        assert pads
        panics = [b.terminator for b in body.blocks
                  if not b.cleanup and b.terminator is not None
                  and terminator_panic_source(b.terminator) == "panic"]
        assert panics and panics[0].unwind is not None
        pad = body.blocks[panics[0].unwind]
        assert pad.cleanup
        assert pad.terminator.kind is TerminatorKind.RESUME
        # The pad drops a subset of the canonical obligation order, in
        # that order (innermost scope first).
        order = unwind_drop_order(body)
        dropped = tuple(s.place.local for s in pad.statements
                        if s.kind is StatementKind.DROP)
        assert dropped == tuple(l for l in order if l in dropped)
        # Unwind edges flow through the ordinary successors() contract.
        assert panics[0].unwind in panics[0].successors()

    def test_lowering_is_idempotent(self):
        _program, body = _body(PANIC_WINDOW, "bug_window")
        ensure_unwind_edges(body)
        n_blocks = len(body.blocks)
        ensure_unwind_edges(body)
        assert len(body.blocks) == n_blocks

    def test_pickled_body_is_not_relowered(self):
        # Pickling strips the underscore lowering flag, but the pads
        # travel in `blocks` — their presence is proof of lowering.
        _program, body = _body(PANIC_WINDOW, "bug_window")
        ensure_unwind_edges(body)
        clone = pickle.loads(pickle.dumps(body))
        n_blocks = len(clone.blocks)
        ensure_unwind_edges(clone)
        assert len(clone.blocks) == n_blocks

    def test_no_pad_without_drop_obligations(self):
        src = """
fn check(x: i32) -> i32 {
    if x > 3 {
        panic!("no");
    }
    x
}
"""
        _program, body = _body(src, "check")
        ensure_unwind_edges(body)
        assert not any(b.cleanup for b in body.blocks)
        assert all(t.unwind is None for _bb, t in body.iter_terminators())

    def test_flattened_walks_skip_cleanup_blocks(self):
        _program, body = _body(PANIC_WINDOW, "bug_window")
        ensure_unwind_edges(body)
        default = list(body.iter_statements())
        with_pads = list(body.iter_statements(include_cleanup=True))
        pad_drops = [(bb, i, s) for bb, i, s in with_pads
                     if body.blocks[bb].cleanup]
        assert pad_drops
        assert default == [x for x in with_pads if x not in pad_drops]

    def test_user_calls_may_unwind(self):
        _program, body = _body(COMPOSED_PANIC, "outer")
        calls = [t for _bb, t in body.iter_terminators()
                 if t.kind is TerminatorKind.CALL and t.func is not None
                 and t.func.name == "inner"]
        assert calls and may_unwind(calls[0])
        assert terminator_panic_source(calls[0]) is None


class TestPanicEffects:
    def test_direct_source(self):
        program = compile_source(PANIC_WINDOW).program
        engine = SummaryEngine(program, AnalysisConfig())
        panic = engine.summary("bug_window").panic
        assert panic.may_panic
        assert "panic" in panic.sources
        assert panic.hop is None
        assert panic.unwind_drops

    def test_composed_through_callee_with_hop(self):
        program = compile_source(COMPOSED_PANIC).program
        engine = SummaryEngine(program, AnalysisConfig())
        inner = engine.summary("inner").panic
        outer = engine.summary("outer").panic
        assert inner.may_panic and inner.hop is None
        assert "assert" in inner.sources or "panic" in inner.sources
        assert outer.may_panic and outer.hop == "inner"
        assert outer.sources >= inner.sources
        assert engine.panic_chain("outer") == ["outer", "inner"]

    def test_calm_function_is_bottom(self):
        program = compile_source(COMPOSED_PANIC).program
        engine = SummaryEngine(program, AnalysisConfig())
        assert engine.summary("calm").panic.is_bottom


class TestPanicSafetyDetector:
    def test_flags_panic_in_duplication_window(self):
        report = _run(BUG_TEMPLATES["panic_between_read_and_write"]
                      .render("a"))
        hits = [f for f in report.findings if f.detector == "panic-safety"]
        assert len(hits) == 1
        assert hits[0].metadata["panic_source"] == "panic"
        kinds = [fact["kind"] for fact in hits[0].provenance]
        assert "ownership-dup" in kinds
        assert "may-panic" in kinds
        assert "unwind-drops" in kinds

    def test_guard_restore_is_clean(self):
        report = _run(BENIGN_TEMPLATES["panic_guard_restores"]("a"))
        assert not report.findings, \
            [(f.detector, f.kind) for f in report.findings]

    def test_subsumes_double_free_on_same_evidence(self):
        report = _run(BUG_TEMPLATES["panic_between_read_and_write"]
                      .render("a"))
        detectors = {f.detector for f in report.findings}
        assert "panic-safety" in detectors
        assert "double-free" not in detectors
        winner = next(f for f in report.findings
                      if f.detector == "panic-safety")
        assert any(fact["kind"] == "subsumed_by"
                   for fact in winner.provenance)

    def test_quiet_without_unwind_edges(self):
        src = BUG_TEMPLATES["panic_between_read_and_write"].render("a")
        detectors = {f.detector
                     for f in _run(src, unwind_edges=False).findings}
        # The ablation loses the panic model; the flow-insensitive
        # double-free report resurfaces un-subsumed.
        assert "panic-safety" not in detectors
        assert "double-free" in detectors

    def test_composed_panic_source_through_callee(self):
        src = """
fn fallible(x: i32) -> i32 {
    if x > 3 {
        panic!("rejected");
    }
    x
}
fn bug_update(x: i32) -> i32 {
    let mut slot = vec![1, 2, 3];
    unsafe {
        let tmp = ptr::read(&slot);
        let v = fallible(x);
        ptr::write(&mut slot, tmp);
        v
    }
}
"""
        report = _run(src)
        hits = [f for f in report.findings if f.detector == "panic-safety"]
        assert len(hits) == 1
        assert hits[0].fn_key == "bug_update"
        may_panic = next(fact for fact in hits[0].provenance
                         if fact["kind"] == "may-panic")
        assert "fallible" in (may_panic.get("callee_chain") or [])


class TestBadDropDetector:
    def test_flags_double_drop_in_drop_impl(self):
        report = _run(BUG_TEMPLATES["double_drop_in_drop_impl"].render("a"))
        hits = [f for f in report.findings if f.detector == "bad-drop"]
        assert len(hits) == 1
        assert hits[0].kind == "double-drop-field"
        assert hits[0].fn_key == "Holder_a::drop"
        assert hits[0].metadata["field"] == "data"

    def test_forgotten_duplicate_is_clean(self):
        src = """
struct Keeper { data: Vec<i32> }
impl Drop for Keeper {
    fn drop(&mut self) {
        unsafe {
            let dup = ptr::read(&self.data);
            mem::forget(dup);
        }
    }
}
"""
        report = _run(src)
        assert not [f for f in report.findings
                    if f.detector == "bad-drop"]

    def test_restored_field_is_clean(self):
        src = """
struct Swapper { data: Vec<i32> }
impl Drop for Swapper {
    fn drop(&mut self) {
        unsafe {
            let dup = ptr::read(&self.data);
            ptr::write(&mut self.data, dup);
        }
    }
}
"""
        report = _run(src)
        assert not [f for f in report.findings
                    if f.detector == "bad-drop"]


class TestUninitExposureDetector:
    def test_flags_pub_escape_of_uninit_alloc(self):
        report = _run(BUG_TEMPLATES["uninit_pub_exposure"].render("a"))
        hits = [f for f in report.findings
                if f.detector == "uninit-exposure"]
        assert len(hits) == 1
        assert hits[0].kind == "uninit-exposure"
        kinds = [fact["kind"] for fact in hits[0].provenance]
        assert "uninit-alloc" in kinds
        assert "never-written" in kinds
        assert "pub-escape" in kinds
        # It subsumes the weaker escape-only unsafe-leak report.
        assert not [f for f in report.findings
                    if f.detector == "unsafe-leak"]

    def test_written_buffer_reports_only_unsafe_leak(self):
        src = """
pub fn make_buf() -> *mut i32 {
    unsafe {
        let p = alloc(16) as *mut i32;
        ptr::write(p, 0);
        p
    }
}
"""
        report = _run(src)
        assert not [f for f in report.findings
                    if f.detector == "uninit-exposure"]
        assert [f for f in report.findings if f.detector == "unsafe-leak"]


class TestInterpreterUnwind:
    def test_panic_in_window_is_ub_during_unwind(self):
        src = BUG_TEMPLATES["panic_between_read_and_write"].render("a") \
            + "\nfn main() { bug_a(true); }\n"
        result = run_program(compile_source(src).program,
                             schedule=ScheduleConfig(max_steps=100_000))
        assert result.outcome == "ub"
        assert "freed twice" in str(result.error)

    def test_no_panic_no_bug(self):
        src = BUG_TEMPLATES["panic_between_read_and_write"].render("a") \
            + "\nfn main() { bug_a(false); }\n"
        result = run_program(compile_source(src).program,
                             schedule=ScheduleConfig(max_steps=100_000))
        assert result.outcome == "ok"

    def test_guard_restore_unwinds_cleanly(self):
        src = BENIGN_TEMPLATES["panic_guard_restores"]("a") \
            + "\nfn main() { guarded_update_a(true); }\n"
        result = run_program(compile_source(src).program,
                             schedule=ScheduleConfig(max_steps=100_000))
        assert result.outcome == "panic"
        assert result.leaked == 0

    def test_unwind_drops_pending_locals(self):
        src = """
fn main() {
    let v = vec![1, 2, 3];
    let w = vec![4, 5, 6];
    panic!("boom");
}
"""
        result = run_program(compile_source(src).program,
                             schedule=ScheduleConfig(max_steps=100_000))
        assert result.outcome == "panic"
        assert result.leaked == 0


class TestDeterminism:
    def test_findings_stable_across_fresh_compiles(self):
        src = "\n".join(
            BUG_TEMPLATES[name].render(f"d{i}")
            for i, name in enumerate(("panic_between_read_and_write",
                                      "double_drop_in_drop_impl",
                                      "uninit_pub_exposure")))

        def run_once():
            report = _run(src)
            return [(f.detector, f.kind, f.fn_key, f.span.lo)
                    for f in report.findings]

        first = run_once()
        assert first == run_once()
        assert sorted(d for d, _k, _f, _l in first) == \
            ["bad-drop", "panic-safety", "uninit-exposure"]


class TestCliAblation:
    def test_no_unwind_edges_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "t.rs"
        path.write_text(
            BUG_TEMPLATES["panic_between_read_and_write"].render("a"))
        assert main(["check", str(path)]) != 0
        assert "panic-safety" in capsys.readouterr().out
        assert main(["check", "--no-unwind-edges", str(path)]) != 0
        out = capsys.readouterr().out
        assert "panic-safety" not in out
        assert "double-free" in out
