"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run([sys.executable, str(script)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
