"""Tests for the ``repro.api`` facade, ``AnalysisConfig`` validation,
the deprecation shims, and report schema versioning."""

import json
import warnings

import pytest

from repro import api
from repro.analysis.config import AnalysisConfig, coerce_config
from repro.detectors.base import AnalysisContext
from repro.detectors.report import SCHEMA_VERSION
from repro.driver import compile_source
from repro.detectors.registry import run_detectors

UAF_SRC = """
fn main() {
    let v: Vec<i32> = Vec::new();
    let p: *const i32 = v.as_ptr();
    drop(v);
    unsafe { print(*p); }
}
"""

CLEAN_SRC = """
fn main() { let x = 1; print(x); }
"""


class TestAnalyze:
    def test_source_text(self):
        report = api.analyze(UAF_SRC)
        assert report.exit_code == 1
        assert any(f.detector == "use-after-free" for f in report.findings)
        assert report.name == "<input>"

    def test_clean_source_exits_zero(self):
        report = api.analyze(CLEAN_SRC)
        assert report.exit_code == 0
        assert report.render() == "no findings"

    def test_path_input(self, tmp_path):
        path = tmp_path / "prog.rs"
        path.write_text(UAF_SRC)
        report = api.analyze(path)
        assert report.exit_code == 1
        assert report.name == str(path)

    def test_name_override(self):
        report = api.analyze(UAF_SRC, name="mine.rs")
        assert report.name == "mine.rs"
        assert report.to_dict()["source"] == "mine.rs"

    def test_detector_names_filter(self):
        report = api.analyze(UAF_SRC, detectors=["double-lock"])
        assert report.exit_code == 0

    def test_unknown_detector_raises(self):
        with pytest.raises(ValueError, match="unknown detector"):
            api.analyze(UAF_SRC, detectors=["not-a-detector"])

    def test_detector_instances_accepted(self):
        from repro.detectors.use_after_free import UseAfterFreeDetector
        report = api.analyze(UAF_SRC, detectors=[UseAfterFreeDetector()])
        assert report.exit_code == 1

    def test_bad_detector_type_raises(self):
        with pytest.raises(TypeError, match="names or Detector"):
            api.analyze(UAF_SRC, detectors=[42])


class TestAnalysisSession:
    def test_session_reusable_and_closable(self):
        session = api.AnalysisSession()
        first = session.analyze(UAF_SRC)
        second = session.analyze(CLEAN_SRC)
        assert first.exit_code == 1 and second.exit_code == 0
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.analyze(UAF_SRC)

    def test_unknown_configured_detector_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown detector"):
            api.AnalysisSession(AnalysisConfig(detectors=("nope",)))

    def test_analyze_files(self, tmp_path):
        paths = []
        for i, src in enumerate([UAF_SRC, CLEAN_SRC]):
            p = tmp_path / f"prog{i}.rs"
            p.write_text(src)
            paths.append(p)
        with api.AnalysisSession() as session:
            reports = session.analyze_files(paths)
        assert [r.exit_code for r in reports] == [1, 0]
        assert reports[0].name == str(paths[0])

    def test_detector_catalog(self):
        catalog = api.detector_catalog()
        names = {entry["name"] for entry in catalog}
        assert {"use-after-free", "double-lock"} <= names
        assert all({"name", "description"} <= set(e) for e in catalog)


class TestReportCache:
    """Whole-file report tier: a warm ``analyze_sources`` over unchanged
    sources serves reports without recompiling or re-solving."""

    SOURCES = (("uaf.rs", UAF_SRC), ("clean.rs", CLEAN_SRC))

    def _run(self, config):
        with api.AnalysisSession(config) as session:
            return session.analyze_sources(list(self.SOURCES))

    def test_warm_run_hits_per_file(self, tmp_path):
        from repro import obs
        config = AnalysisConfig(cache_dir=str(tmp_path))
        with obs.collecting() as cold:
            first = self._run(config)
        assert cold.counters["analysis.report_cache.miss"] == 2
        assert cold.counters["analysis.report_cache.store"] == 2
        with obs.collecting() as warm:
            second = self._run(config)
        assert warm.counters["analysis.report_cache.hit"] == 2
        assert warm.counters.get("analysis.report_cache.miss", 0) == 0
        # No compile, no solve: the report tier short-circuits both.
        assert warm.counters.get(
            "analysis.executor.solved_functions", 0) == 0
        assert [json.dumps(r.to_dict()) for r in first] == \
            [json.dumps(r.to_dict()) for r in second]

    def test_source_edit_misses_only_that_file(self, tmp_path):
        from repro import obs
        config = AnalysisConfig(cache_dir=str(tmp_path))
        self._run(config)
        edited = (("uaf.rs", UAF_SRC),
                  ("clean.rs", CLEAN_SRC + "\n// touched\n"))
        with obs.collecting() as warm:
            with api.AnalysisSession(config) as session:
                session.analyze_sources(list(edited))
        assert warm.counters["analysis.report_cache.hit"] == 1
        assert warm.counters["analysis.report_cache.miss"] == 1

    def test_corrupt_report_entry_recomputes(self, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path))
        first = self._run(config)
        reports_dir = tmp_path / "reports"
        entries = sorted(reports_dir.glob("*.report.pkl"))
        assert len(entries) == 2
        for entry in entries:
            entry.write_bytes(b"\x00torn")
        from repro import obs
        with obs.collecting() as col:
            second = self._run(config)
        assert col.counters["analysis.report_cache.corrupt"] == 2
        assert [json.dumps(r.to_dict()) for r in first] == \
            [json.dumps(r.to_dict()) for r in second]

    def test_detector_instances_bypass_report_cache(self, tmp_path):
        from repro import obs
        from repro.detectors.use_after_free import UseAfterFreeDetector
        config = AnalysisConfig(cache_dir=str(tmp_path))
        with obs.collecting() as col:
            with api.AnalysisSession(config) as session:
                session.analyze_sources(
                    list(self.SOURCES),
                    detectors=[UseAfterFreeDetector()])
        assert "analysis.report_cache.miss" not in col.counters
        assert not (tmp_path / "reports").exists()

    def test_report_cache_knob_disables_tier(self, tmp_path):
        from repro import obs
        config = AnalysisConfig(cache_dir=str(tmp_path),
                                report_cache=False)
        self._run(config)
        with obs.collecting() as warm:
            self._run(config)
        assert "analysis.report_cache.hit" not in warm.counters
        # The summary tier below still works.
        assert warm.counters["analysis.cache.hit"] > 0


class TestAnalysisConfig:
    def test_frozen(self):
        config = AnalysisConfig()
        with pytest.raises(Exception):
            config.jobs = 2

    def test_with_returns_new_instance(self):
        config = AnalysisConfig()
        other = config.with_(jobs=4)
        assert other.jobs == 4 and config.jobs == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalysisConfig(jobs=0)
        with pytest.raises(ValueError):
            AnalysisConfig(cache_limit=-1)
        with pytest.raises(ValueError, match="not a string"):
            AnalysisConfig(detectors="use-after-free")
        with pytest.raises(ValueError, match="cache_dir"):
            AnalysisConfig(cache_dir=7)

    def test_detectors_tuple_ified(self):
        config = AnalysisConfig(detectors=["use-after-free"])
        assert config.detectors == ("use-after-free",)

    def test_caching_enabled_needs_dir_and_flag(self, tmp_path):
        assert not AnalysisConfig().caching_enabled
        assert AnalysisConfig(cache_dir=str(tmp_path)).caching_enabled
        assert not AnalysisConfig(cache_dir=str(tmp_path),
                                  use_cache=False).caching_enabled


class TestDeprecationShims:
    def test_interprocedural_kwarg_warns(self):
        program = compile_source(CLEAN_SRC).program
        with pytest.warns(DeprecationWarning, match="interprocedural"):
            context = AnalysisContext(program, interprocedural=False)
        assert context.config.interprocedural is False

    def test_legacy_positional_bool_still_works(self):
        # The pre-AnalysisConfig call shape — a bare bool in the config
        # position — keeps working for one release, with the same
        # warning as the keyword form.
        program = compile_source(CLEAN_SRC).program
        with pytest.warns(DeprecationWarning, match="interprocedural"):
            context = AnalysisContext(program, False)
        assert context.config.interprocedural is False

    def test_coerce_config_passthrough(self):
        config = AnalysisConfig(jobs=2)
        assert coerce_config(config) is config
        assert coerce_config(None) == AnalysisConfig()

    def test_run_detectors_accepts_config(self):
        compiled = compile_source(UAF_SRC)
        report = run_detectors(
            compiled.program, source=compiled.source,
            config=AnalysisConfig(detectors=("use-after-free",)))
        assert all(f.detector == "use-after-free" for f in report.findings)
        assert report.findings


class TestSchemaVersion:
    def test_report_dict_carries_version(self):
        payload = api.analyze(UAF_SRC).to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload) == {"schema_version", "source", "findings",
                                "counts", "errors", "warnings"}

    def test_finding_dict_carries_version_and_stable_fields(self):
        payload = api.analyze(UAF_SRC).to_dict()
        finding = payload["findings"][0]
        assert finding["schema_version"] == SCHEMA_VERSION
        for key in ("detector", "kind", "severity", "message", "fn",
                    "metadata", "provenance"):
            assert key in finding
        json.dumps(payload)  # whole payload must stay JSON-serializable

    def test_version_shape(self):
        major, minor = SCHEMA_VERSION.split(".")
        assert major.isdigit() and minor.isdigit()
