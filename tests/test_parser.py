"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.diagnostics import CompileError
from repro.lang.parser import parse_source


def parse(text):
    return parse_source(text)


def parse_fn_body(stmts: str) -> ast.Block:
    crate = parse(f"fn test() {{ {stmts} }}")
    return crate.items[0].body


def first_expr(stmts: str):
    body = parse_fn_body(stmts)
    if body.statements:
        stmt = body.statements[0]
        if isinstance(stmt, ast.LetStmt):
            return stmt.init
        return stmt.expr
    return body.tail


class TestItems:
    def test_empty_crate(self):
        assert parse("").items == []

    def test_fn(self):
        crate = parse("fn f(a: i32, b: bool) -> i32 { a }")
        fn = crate.items[0]
        assert isinstance(fn, ast.FnDef)
        assert fn.name == "f"
        assert [p.name for p in fn.params] == ["a", "b"]
        assert fn.ret_ty is not None

    def test_unsafe_fn(self):
        fn = parse("unsafe fn f() {}").items[0]
        assert fn.is_unsafe

    def test_struct(self):
        s = parse("struct P { x: i32, y: i32 }").items[0]
        assert isinstance(s, ast.StructDef)
        assert [f.name for f in s.fields] == ["x", "y"]

    def test_tuple_struct(self):
        s = parse("struct Wrapper(i32, bool);").items[0]
        assert s.is_tuple
        assert len(s.fields) == 2

    def test_unit_struct(self):
        s = parse("struct Marker;").items[0]
        assert s.fields == []

    def test_generic_struct(self):
        s = parse("struct Holder<T> { value: T }").items[0]
        assert s.generics == ["T"]

    def test_enum(self):
        e = parse("enum E { A, B(i32), C }").items[0]
        assert isinstance(e, ast.EnumDef)
        assert [v.name for v in e.variants] == ["A", "B", "C"]
        assert len(e.variants[1].fields) == 1

    def test_impl(self):
        crate = parse("struct S; impl S { fn m(&self) {} }")
        impl = crate.items[1]
        assert isinstance(impl, ast.ImplBlock)
        assert impl.name == "S"
        assert impl.items[0].params[0].is_self

    def test_unsafe_impl_trait(self):
        impl = parse("struct S; unsafe impl Sync for S {}").items[1]
        assert impl.is_unsafe
        assert impl.trait_path.as_str() == "Sync"

    def test_unsafe_trait(self):
        t = parse("unsafe trait Danger {}").items[0]
        assert isinstance(t, ast.TraitDef)
        assert t.is_unsafe

    def test_static(self):
        s = parse("static COUNT: i32 = 0;").items[0]
        assert isinstance(s, ast.StaticDef)
        assert not s.mutability.is_mut

    def test_static_mut(self):
        s = parse("static mut COUNT: i32 = 0;").items[0]
        assert s.mutability.is_mut

    def test_use_is_skipped_gracefully(self):
        crate = parse("use std::sync::Mutex; fn f() {}")
        assert isinstance(crate.items[0], ast.UseDecl)
        assert isinstance(crate.items[1], ast.FnDef)

    def test_mod(self):
        m = parse("mod inner { fn g() {} }").items[0]
        assert isinstance(m, ast.ModDecl)
        assert m.items[0].name == "g"

    def test_walk_items_flattens_mods(self):
        crate = parse("mod a { fn f() {} mod b { fn g() {} } }")
        names = [i.name for i in crate.walk_items()]
        assert "f" in names and "g" in names

    def test_attributes_collected(self):
        fn = parse('#[derive(Debug)]\nfn f() {}').items[0]
        assert fn.attrs and "derive" in fn.attrs[0]

    def test_error_on_garbage(self):
        with pytest.raises(CompileError):
            parse("fn f( {")


class TestTypes:
    def test_nested_generics_shr_split(self):
        s = parse("struct S { v: Vec<Vec<i32>> }").items[0]
        ty = s.fields[0].ty
        assert isinstance(ty, ast.TyPath)
        inner = ty.path.last.generic_args[0]
        assert isinstance(inner, ast.TyPath)
        assert inner.path.last.name == "Vec"

    def test_ref_types(self):
        s = parse("struct S { a: &i32, b: &mut i32, c: &'a str }").items[0]
        a, b, c = [f.ty for f in s.fields]
        assert isinstance(a, ast.TyRef) and not a.mutability.is_mut
        assert isinstance(b, ast.TyRef) and b.mutability.is_mut
        assert isinstance(c, ast.TyRef) and c.lifetime == "'a"

    def test_raw_pointer_types(self):
        s = parse("struct S { a: *const i32, b: *mut u8 }").items[0]
        a, b = [f.ty for f in s.fields]
        assert isinstance(a, ast.TyRawPtr) and not a.mutability.is_mut
        assert isinstance(b, ast.TyRawPtr) and b.mutability.is_mut

    def test_tuple_unit_slice_array(self):
        s = parse(
            "struct S { a: (i32, bool), b: (), c: [u8], d: [u8; 4] }"
        ).items[0]
        a, b, c, d = [f.ty for f in s.fields]
        assert isinstance(a, ast.TyTuple)
        assert isinstance(b, ast.TyUnit)
        assert isinstance(c, ast.TySlice)
        assert isinstance(d, ast.TyArray)

    def test_fn_type(self):
        s = parse("struct S { f: fn(i32) -> bool }").items[0]
        assert isinstance(s.fields[0].ty, ast.TyFn)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = first_expr("let x = 1 + 2 * 3;")
        assert isinstance(expr, ast.Binary)
        assert expr.op is ast.BinOp.ADD
        assert isinstance(expr.right, ast.Binary)
        assert expr.right.op is ast.BinOp.MUL

    def test_comparison_below_arith(self):
        expr = first_expr("let x = 1 + 2 < 4;")
        assert expr.op is ast.BinOp.LT

    def test_logical_and_or(self):
        expr = first_expr("let x = a && b || c;")
        assert expr.op is ast.BinOp.OR
        assert expr.left.op is ast.BinOp.AND

    def test_unary(self):
        expr = first_expr("let x = -*p;")
        assert expr.op is ast.UnOp.NEG
        assert expr.operand.op is ast.UnOp.DEREF

    def test_cast_chain(self):
        expr = first_expr("let p = &x as *const i32 as *mut i32;")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.operand, ast.Cast)
        assert isinstance(expr.operand.operand, ast.Reference)

    def test_method_chain(self):
        expr = first_expr("let g = m.lock().unwrap();")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "unwrap"
        assert expr.receiver.method == "lock"

    def test_field_vs_method(self):
        expr = first_expr("let v = a.b.c();")
        assert isinstance(expr, ast.MethodCall)
        assert isinstance(expr.receiver, ast.FieldAccess)

    def test_tuple_index(self):
        expr = first_expr("let v = pair.0;")
        assert isinstance(expr, ast.TupleIndex)
        assert expr.index == 0

    def test_index(self):
        expr = first_expr("let v = items[i + 1];")
        assert isinstance(expr, ast.Index)

    def test_struct_literal(self):
        expr = first_expr("let p = Point { x: 1, y: 2 };")
        assert isinstance(expr, ast.StructLiteral)
        assert [name for name, _ in expr.fields] == ["x", "y"]

    def test_struct_literal_shorthand(self):
        expr = first_expr("let p = Point { x, y };")
        assert all(isinstance(v, ast.PathExpr) for _, v in expr.fields)

    def test_struct_literal_forbidden_in_condition(self):
        # `if x == S { }` must parse the `{}` as the if body.
        body = parse_fn_body("if x == Limit { return; }")
        expr = body.statements[0].expr if body.statements else body.tail
        assert isinstance(expr, ast.If)
        assert isinstance(expr.condition, ast.Binary)

    def test_range(self):
        expr = first_expr("let r = 0..10;")
        assert isinstance(expr, ast.Range)
        assert not expr.inclusive

    def test_inclusive_range(self):
        expr = first_expr("let r = 0..=10;")
        assert expr.inclusive

    def test_turbofish(self):
        expr = first_expr("let v = Vec::<i32>::new();")
        assert isinstance(expr, ast.Call)
        segments = expr.callee.path.segments
        assert segments[0].generic_args

    def test_macro_vec(self):
        expr = first_expr("let v = vec![1, 2, 3];")
        assert isinstance(expr, ast.MacroCall)
        assert expr.name == "vec"
        assert len(expr.args) == 3

    def test_macro_vec_repeat(self):
        expr = first_expr("let v = vec![0u8; 100];")
        assert expr.repeat is not None

    def test_macro_println_format(self):
        expr = first_expr('println!("{} {}", a, b);')
        assert expr.format_string == "{} {}"
        assert len(expr.args) == 3

    def test_closure(self):
        expr = first_expr("let f = |a, b| a + b;")
        assert isinstance(expr, ast.Closure)
        assert [p for p, _ in expr.params] == ["a", "b"]

    def test_move_closure(self):
        expr = first_expr("let f = move || x;")
        assert expr.is_move
        assert expr.params == []

    def test_try_operator(self):
        expr = first_expr("let v = fallible()?;")
        assert isinstance(expr, ast.Try)

    def test_unsafe_block_expr(self):
        expr = first_expr("let v = unsafe { *p };")
        assert isinstance(expr, ast.Block)
        assert expr.is_unsafe

    def test_assignment(self):
        expr = first_expr("x = y + 1;")
        assert isinstance(expr, ast.Assign)

    def test_compound_assignment(self):
        expr = first_expr("x += 1;")
        assert isinstance(expr, ast.CompoundAssign)
        assert expr.op is ast.BinOp.ADD


class TestControlFlow:
    def test_if_else_chain(self):
        expr = first_expr("if a { 1 } else if b { 2 } else { 3 };")
        assert isinstance(expr, ast.If)
        assert isinstance(expr.else_branch, ast.If)
        assert isinstance(expr.else_branch.else_branch, ast.Block)

    def test_if_let(self):
        expr = first_expr("if let Some(x) = opt { x };")
        assert isinstance(expr, ast.IfLet)
        assert isinstance(expr.pattern, ast.PatTupleStruct)

    def test_while_let(self):
        expr = first_expr("while let Some(x) = it.next() { }")
        assert isinstance(expr, ast.WhileLet)

    def test_match_arms(self):
        expr = first_expr("""match v {
            0 => "zero",
            1 | 2 => "small",
            n if n > 100 => "big",
            _ => "other",
        };""")
        assert isinstance(expr, ast.Match)
        assert len(expr.arms) == 4
        assert expr.arms[2].guard is not None

    def test_match_range_pattern(self):
        expr = first_expr("match v { 0..=9 => 1, _ => 0 };")
        assert isinstance(expr.arms[0].pattern, ast.PatRange)

    def test_for_loop(self):
        expr = first_expr("for i in 0..10 { }")
        assert isinstance(expr, ast.For)

    def test_loop_break_continue(self):
        body = parse_fn_body("loop { if done { break; } continue; }")
        expr = body.statements[0].expr if body.statements else body.tail
        assert isinstance(expr, ast.Loop)

    def test_return_with_value(self):
        expr = first_expr("return 42;")
        assert isinstance(expr, ast.Return)
        assert expr.value.value == 42


class TestPatterns:
    def test_destructuring_let(self):
        body = parse_fn_body("let (a, b) = pair;")
        assert isinstance(body.statements[0].pattern, ast.PatTuple)

    def test_mut_binding(self):
        body = parse_fn_body("let mut x = 1;")
        assert body.statements[0].pattern.mutability.is_mut

    def test_ref_pattern(self):
        body = parse_fn_body("let &x = r;")
        assert isinstance(body.statements[0].pattern, ast.PatRef)

    def test_wildcard(self):
        body = parse_fn_body("let _ = f();")
        assert isinstance(body.statements[0].pattern, ast.PatWild)

    def test_struct_pattern(self):
        expr = first_expr("match p { Point { x, y } => x + y };")
        assert isinstance(expr.arms[0].pattern, ast.PatStruct)
