"""MIR lowering tests: storage events, drops, moves, unsafe provenance."""

from conftest import compile_, mir_of

from repro.lang.types import TyKind
from repro.mir.nodes import (
    RvalueKind, StatementKind, TerminatorKind,
)


def statements_of(body, kind):
    return [s for _b, _i, s in body.iter_statements() if s.kind is kind]


def calls_of(body, name=None):
    out = []
    for _bb, term in body.iter_terminators():
        if term.kind is TerminatorKind.CALL:
            if name is None or (term.func and name in term.func.name):
                out.append(term)
    return out


class TestLocalsAndStorage:
    def test_return_place_is_local_zero(self):
        body = mir_of("fn main() -> i32 { 7 }", "main")
        assert body.locals[0].index == 0
        assert body.locals[0].ty.kind is TyKind.INT

    def test_args_follow_return_place(self):
        body = mir_of("fn f(a: i32, b: bool) {}", "f")
        assert body.arg_count == 2
        assert body.locals[1].is_arg and body.locals[2].is_arg

    def test_let_generates_storage_live(self):
        body = mir_of("fn main() { let x = 1; }")
        lives = statements_of(body, StatementKind.STORAGE_LIVE)
        deads = statements_of(body, StatementKind.STORAGE_DEAD)
        assert lives and deads

    def test_storage_live_precedes_dead_per_local(self):
        body = mir_of("fn main() { let x = 1; let y = x + 1; }")
        seen = {}
        order = []
        for bb, i, stmt in body.iter_statements():
            if stmt.kind is StatementKind.STORAGE_LIVE:
                order.append(("live", stmt.local))
            elif stmt.kind is StatementKind.STORAGE_DEAD:
                order.append(("dead", stmt.local))
        for kind, local in order:
            if kind == "live":
                seen[local] = True
            else:
                assert seen.get(local), f"StorageDead before Live for _{local}"

    def test_user_name_recorded(self):
        body = mir_of("fn main() { let total = 1; }")
        names = [l.name for l in body.locals]
        assert "total" in names


class TestDropsAndMoves:
    def test_vec_local_gets_drop(self):
        body = mir_of("fn main() { let v: Vec<i32> = Vec::new(); }")
        drops = statements_of(body, StatementKind.DROP)
        assert drops, "owned Vec must be dropped at scope end"

    def test_scalar_gets_no_drop(self):
        body = mir_of("fn main() { let x = 1; }")
        assert not statements_of(body, StatementKind.DROP)

    def test_move_operand_for_non_copy(self):
        body = mir_of("""
            fn main() {
                let v: Vec<i32> = Vec::new();
                let w = v;
            }""")
        moves = [s for _b, _i, s in body.iter_statements()
                 if s.kind is StatementKind.ASSIGN and s.rvalue is not None
                 and s.rvalue.kind is RvalueKind.USE
                 and s.rvalue.operands[0].is_move]
        assert moves

    def test_copy_operand_for_scalar(self):
        body = mir_of("fn main() { let x = 1; let y = x; }")
        for _b, _i, s in body.iter_statements():
            if s.kind is StatementKind.ASSIGN and s.rvalue is not None:
                for op in s.rvalue.operands:
                    assert not op.is_move

    def test_drops_in_reverse_declaration_order(self):
        body = mir_of("""
            fn main() {
                let a: Vec<i32> = Vec::new();
                let b: Vec<i32> = Vec::new();
            }""")
        drop_locals = [s.place.local for _b, _i, s in body.iter_statements()
                       if s.kind is StatementKind.DROP]
        assert drop_locals == sorted(drop_locals, reverse=True)

    def test_moved_temp_drop_elided(self):
        body = mir_of("""
            fn main() {
                let v = Vec::new();
            }""")
        # The Vec::new() temp was moved into `v`; only `v` gets a drop.
        drops = statements_of(body, StatementKind.DROP)
        assert len(drops) == 1


class TestUnsafeProvenance:
    def test_unsafe_block_marks_statements(self):
        body = mir_of("""
            fn main() {
                let x = 1;
                unsafe { let y = x + 1; }
            }""")
        flags = [s.in_unsafe for _b, _i, s in body.iter_statements()
                 if s.kind is StatementKind.ASSIGN]
        assert any(flags) and not all(flags)

    def test_unsafe_fn_marks_everything(self):
        body = mir_of("unsafe fn f() { let x = 1; }", "f")
        assert body.is_unsafe_fn
        assert all(s.in_unsafe for _b, _i, s in body.iter_statements())

    def test_interior_unsafe_flag(self):
        body = mir_of("""
            fn f() {
                unsafe { let x = 1; }
            }""", "f")
        assert body.has_unsafe_block
        assert not body.is_unsafe_fn
        assert body.has_interior_unsafe


class TestControlFlowLowering:
    def test_if_produces_switch(self):
        body = mir_of("fn main() { if true { } else { } }")
        switches = [t for _b, t in body.iter_terminators()
                    if t.kind is TerminatorKind.SWITCH_INT]
        assert switches

    def test_every_block_terminated(self):
        body = mir_of("""
            fn main() {
                let mut x = 0;
                for i in 0..4 {
                    if i == 2 { continue; }
                    x += i;
                }
                while x > 0 { x -= 1; }
            }""")
        for block in body.blocks:
            assert block.terminator is not None

    def test_index_emits_bounds_assert(self):
        body = mir_of("""
            fn main() {
                let v = vec![1, 2];
                let x = v[1];
            }""")
        asserts = [t for _b, t in body.iter_terminators()
                   if t.kind is TerminatorKind.ASSERT]
        assert asserts

    def test_short_circuit_and(self):
        body = mir_of("fn f(a: bool, b: bool) -> bool { a && b }", "f")
        switches = [t for _b, t in body.iter_terminators()
                    if t.kind is TerminatorKind.SWITCH_INT]
        assert switches, "&& must lower to a branch, not a strict BinOp"

    def test_return_unwinds_scopes(self):
        body = mir_of("""
            fn f(flag: bool) {
                let v: Vec<i32> = Vec::new();
                if flag { return; }
            }""", "f")
        # The early-return path must drop `v` too: at least two Drop sites.
        drops = statements_of(body, StatementKind.DROP)
        assert len(drops) >= 2


class TestCallsAndMethods:
    def test_user_call_resolved(self):
        body = mir_of("""
            fn helper(x: i32) -> i32 { x }
            fn main() { let y = helper(1); }""")
        calls = calls_of(body, "helper")
        assert calls and calls[0].func.user_fn == "helper"

    def test_method_call_resolved_to_impl(self):
        body = mir_of("""
            struct S { v: i32 }
            impl S { fn get(&self) -> i32 { self.v } }
            fn main() { let s = S { v: 1 }; let x = s.get(); }""")
        calls = calls_of(body, "S::get")
        assert calls

    def test_lock_resolves_to_builtin(self):
        body = mir_of("""
            fn f(m: &Mutex<i32>) { let g = m.lock().unwrap(); }""", "f")
        assert calls_of(body, "Mutex::lock")

    def test_guard_type_inferred(self):
        body = mir_of("""
            fn f(m: &Mutex<i32>) { let g = m.lock().unwrap(); }""", "f")
        guard_locals = [l for l in body.locals
                        if l.ty.kind is TyKind.BUILTIN
                        and l.ty.name == "MutexGuard"]
        assert guard_locals

    def test_spawn_creates_closure_body(self):
        compiled = compile_("""
            fn main() {
                let h = thread::spawn(move || { let x = 1; });
            }""")
        assert any("{closure#0}" in k for k in compiled.program.functions)

    def test_closure_captures_become_args(self):
        compiled = compile_("""
            fn main() {
                let data = 5;
                let f = move || data + 1;
            }""")
        closure = compiled.program.functions["main::{closure#0}"]
        assert closure.captures == ["data"]
        assert closure.arg_count == 1


class TestGuardLifetimes:
    """The Figure 8 semantics: match scrutinee temporaries live to the end
    of the whole match."""

    def _guard_dead_positions(self, body):
        guard_locals = {l.index for l in body.locals
                        if l.ty.kind is TyKind.BUILTIN and "Guard" in l.ty.name}
        positions = {}
        for bb, i, s in body.iter_statements():
            if s.kind is StatementKind.STORAGE_DEAD and s.local in guard_locals:
                positions[s.local] = bb
        return positions

    def test_match_scrutinee_guard_survives_match(self):
        body = mir_of("""
            struct Inner { m: i32 }
            fn f(client: &RwLock<Inner>) {
                match client.read().unwrap().m {
                    0 => { let x = 1; }
                    _ => {}
                };
            }""", "f")
        # The read guard must die in the match's join block, i.e. after
        # every arm body block.
        positions = self._guard_dead_positions(body)
        assert positions, "guard local must exist and die"

    def test_let_statement_guard_dies_at_statement_end(self):
        body = mir_of("""
            fn f(m: &Mutex<i32>) {
                let v = *m.lock().unwrap();
                let w = v + 1;
            }""", "f")
        # Guard must be dropped before the `w` assignment.
        guard_locals = {l.index for l in body.locals
                        if l.ty.kind is TyKind.BUILTIN
                        and l.ty.name == "MutexGuard"}
        assert guard_locals
        events = []
        for bb, i, s in body.iter_statements():
            if s.kind is StatementKind.DROP and s.place.local in guard_locals:
                events.append(("drop", bb, i))
            if s.kind is StatementKind.ASSIGN and \
                    body.locals[s.place.local].name == "w":
                events.append(("w", bb, i))
        kinds = [e[0] for e in events]
        assert kinds.index("drop") < kinds.index("w")


class TestStatics:
    def test_static_init_body_emitted(self):
        compiled = compile_("static N: i32 = 40; fn main() {}")
        assert "__static_init::N" in compiled.program.functions

    def test_static_access_creates_named_local(self):
        body = mir_of("""
            static N: i32 = 40;
            fn main() { let x = N + 2; }""")
        assert any((l.name or "").startswith("static:") for l in body.locals)
