"""Tests for the summary engine: SCC fixpoints, effect chains, and the
cross-function provenance the detectors attach from them."""

from conftest import check, compile_, detectors_named

from repro.analysis.engine import SummaryEngine
from repro.analysis.points_to import compute_return_summaries
from repro.detectors.base import AnalysisContext


def engine_of(src: str) -> SummaryEngine:
    return SummaryEngine(compile_(src).program)


# Callers are defined before callees on purpose: a bounded round loop
# that walks functions in definition order propagates return facts one
# level per round, so the old 3-round `compute_return_summaries` lost
# this 4-deep chain.
CHAIN_SRC = """
fn chain1(p: *const i32) -> *const i32 { chain2(p) }
fn chain2(p: *const i32) -> *const i32 { chain3(p) }
fn chain3(p: *const i32) -> *const i32 { chain4(p) }
fn chain4(p: *const i32) -> *const i32 { p }
"""


class TestReturnChainFixpoint:
    def test_legacy_summaries_reach_four_deep(self):
        program = compile_(CHAIN_SRC).program
        summaries = compute_return_summaries(program)
        for fn in ("chain1", "chain2", "chain3", "chain4"):
            assert 0 in summaries.get(fn, set()), fn

    def test_engine_summaries_reach_four_deep(self):
        engine = engine_of(CHAIN_SRC)
        for fn in ("chain1", "chain2", "chain3", "chain4"):
            assert 0 in engine.summary(fn).returns, fn

    def test_chain_feeds_null_deref_end_to_end(self):
        report = check(CHAIN_SRC + """
fn main() {
    let p = chain1(ptr::null());
    unsafe { let x = *p; print(x); }
}
""")
        assert detectors_named(report, "null-deref")


class TestRecursiveFixpoint:
    def test_self_recursive_drop_converges(self):
        engine = engine_of("""
fn consume(v: Vec<i32>, n: i32) {
    if n > 0 {
        consume(v, n - 1);
    }
}
""")
        summary = engine.summary("consume")
        assert summary.drops_arg(0)
        assert not summary.drops_arg(1)

    def test_mutual_recursion_returns_converge(self):
        engine = engine_of("""
fn ping(p: *const i32, n: i32) -> *const i32 {
    if n > 0 { pong(p, n - 1) } else { p }
}
fn pong(p: *const i32, n: i32) -> *const i32 {
    ping(p, n)
}
""")
        assert 0 in engine.summary("ping").returns
        assert 0 in engine.summary("pong").returns


class TestDropChains:
    TWO_DEEP_UAF = """
fn sink_inner(v: Vec<i32>) {
    print(1);
}
fn sink(v: Vec<i32>) {
    sink_inner(v);
}
fn main() {
    let buffer = vec![1, 2, 3];
    let p = buffer.as_ptr();
    sink(buffer);
    unsafe {
        let x = *p;
        print(x);
    }
}
"""

    def test_uaf_free_two_calls_deep(self):
        report = check(self.TWO_DEEP_UAF)
        findings = detectors_named(report, "use-after-free")
        assert findings
        assert findings[0].fn_key == "main"

    def test_drop_chain_hops(self):
        engine = engine_of(self.TWO_DEEP_UAF)
        assert engine.summary("sink").may_drop_args[0] == ("sink_inner", 0)
        assert engine.summary("sink_inner").may_drop_args[0] == \
            ("sink_inner", 0)
        assert engine.drop_chain("sink", 0) == ["sink", "sink_inner"]

    def test_provenance_chain_end_to_end(self):
        report = check(self.TWO_DEEP_UAF)
        finding = detectors_named(report, "use-after-free")[0]
        chain_facts = [f for f in finding.provenance
                       if f["kind"] == "summary-chain"]
        assert chain_facts, [f["kind"] for f in finding.provenance]
        fact = chain_facts[0]
        assert fact["chain"] == ["main", "sink", "sink_inner"]
        assert fact["callee"] == "sink"
        assert fact["position"] == 0
        # Summary-chain facts extend the intra-procedural trail, they do
        # not replace it.
        kinds = [f["kind"] for f in finding.provenance]
        assert kinds.index("points-to") < kinds.index("summary-chain")

    def test_forwarding_without_drop_is_clean(self):
        report = check("""
fn keep(v: Vec<i32>) -> Vec<i32> {
    v
}
fn main() {
    let buffer = vec![1, 2, 3];
    let p = buffer.as_ptr();
    let kept = keep(buffer);
    unsafe {
        let x = *p;
        print(x);
    }
    print(kept.len() as i32);
}
""")
        assert not detectors_named(report, "use-after-free")


class TestLockChains:
    def test_double_lock_through_helper(self):
        report = check("""
fn helper_inner(m: &Mutex<i32>) -> i32 {
    let g = m.lock().unwrap();
    *g
}
fn helper(m: &Mutex<i32>) -> i32 {
    helper_inner(m)
}
fn outer(m: &Mutex<i32>) {
    let g = m.lock().unwrap();
    let v = helper(m);
    print(v + *g);
}
""")
        findings = detectors_named(report, "double-lock")
        assert findings
        finding = findings[0]
        assert finding.fn_key == "outer"
        assert finding.metadata.get("interprocedural")
        chain_facts = [f for f in finding.provenance
                       if f["kind"] == "summary-chain"]
        assert chain_facts
        assert chain_facts[0]["chain"] == ["outer", "helper", "helper_inner"]

    def test_lock_chain_api(self):
        ctx = AnalysisContext(compile_("""
fn helper_inner(m: &Mutex<i32>) -> i32 {
    let g = m.lock().unwrap();
    *g
}
fn helper(m: &Mutex<i32>) -> i32 {
    helper_inner(m)
}
""").program)
        summary = ctx.summary("helper")
        assert summary.acquires_any_lock
        (lock,) = summary.locks
        assert lock[0] == "arg" and lock[1] == 0
        assert ctx.lock_chain("helper", lock) == ["helper", "helper_inner"]

    def test_guard_returned_by_helper(self):
        report = check("""
fn acquire(m: &Mutex<i32>) -> MutexGuard<i32> {
    m.lock().unwrap()
}
fn outer(m: &Mutex<i32>) {
    let g = acquire(m);
    let g2 = m.lock().unwrap();
    print(*g + *g2);
}
""")
        findings = detectors_named(report, "double-lock")
        assert findings
        finding = findings[0]
        assert finding.fn_key == "outer"
        chain_facts = [f for f in finding.provenance
                       if f["kind"] == "summary-chain"]
        assert chain_facts
        assert "acquire" in chain_facts[0]["chain"]


class TestCallsUnknown:
    def test_ffi_poisons_transitively(self):
        engine = engine_of("""
fn leaf(x: i32) -> i32 {
    unsafe { ffi_do(x) }
}
fn mid(x: i32) -> i32 {
    leaf(x)
}
fn top(x: i32) -> i32 {
    mid(x)
}
""")
        assert engine.summary("leaf").calls_unknown
        assert engine.summary("mid").calls_unknown
        assert engine.summary("top").calls_unknown

    def test_pure_chain_is_clean(self):
        engine = engine_of("""
fn leaf(x: i32) -> i32 { x + 1 }
fn top(x: i32) -> i32 { leaf(x) }
""")
        assert not engine.summary("top").calls_unknown
