"""Cross-thread deadlock engine: lock graph, detector, subsumption."""

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import SummaryEngine
from repro.detectors.registry import run_detectors
from repro.driver import compile_source

ABBA_SPLIT = """
fn grab_both(first: &Mutex<i32>, second: &Mutex<i32>) {
    let a = first.lock().unwrap();
    let b = second.lock().unwrap();
    print(*a + *b);
}
fn bug_abba() {
    let m1 = Arc::new(Mutex::new(1));
    let m2 = Arc::new(Mutex::new(2));
    let c1 = Arc::clone(&m1);
    let c2 = Arc::clone(&m2);
    let h = thread::spawn(move || {
        grab_both(&c2, &c1);
    });
    grab_both(&m1, &m2);
    h.join();
}
"""

STATIC_CROSS_THREAD_ABBA = """
static LA: Mutex<i32> = Mutex::new(0);
static LB: Mutex<i32> = Mutex::new(0);
fn bug_static() {
    let h = thread::spawn(move || {
        let b = LB.lock().unwrap();
        let a = LA.lock().unwrap();
        print(*a + *b);
    });
    let a = LA.lock().unwrap();
    let b = LB.lock().unwrap();
    print(*a + *b);
    h.join();
}
"""

SAME_THREAD_ABBA = """
static SA: Mutex<i32> = Mutex::new(0);
static SB: Mutex<i32> = Mutex::new(0);
fn first_order() {
    let a = SA.lock().unwrap();
    let b = SB.lock().unwrap();
    print(*a + *b);
}
fn second_order() {
    let b = SB.lock().unwrap();
    let a = SA.lock().unwrap();
    print(*a + *b);
}
"""

THREE_LOCK_CYCLE = """
static TA: Mutex<i32> = Mutex::new(0);
static TB: Mutex<i32> = Mutex::new(0);
static TC: Mutex<i32> = Mutex::new(0);
fn bug_three() {
    let h1 = thread::spawn(move || {
        let a = TA.lock().unwrap();
        let b = TB.lock().unwrap();
        print(*a + *b);
    });
    let h2 = thread::spawn(move || {
        let b = TB.lock().unwrap();
        let c = TC.lock().unwrap();
        print(*b + *c);
    });
    let c = TC.lock().unwrap();
    let a = TA.lock().unwrap();
    print(*a + *c);
    h1.join();
    h2.join();
}
"""


def _findings(src, **config_kwargs):
    compiled = compile_source(src)
    report = run_detectors(compiled.program,
                           config=AnalysisConfig(**config_kwargs))
    return report.findings


class TestLockGraph:
    def test_abba_graph_shape(self):
        compiled = compile_source(ABBA_SPLIT)
        engine = SummaryEngine(compiled.program, AnalysisConfig())
        graph = engine.lock_graph()
        # Two Arc-allocated mutexes, one edge per direction, two roots
        # (main + the spawn site).
        assert len(graph.nodes) == 2
        assert all(node[0] == "heap" for node in graph.nodes)
        assert len({e.root for e in graph.edges}) == 2
        cycles = graph.deadlock_cycles(4)
        assert len(cycles) == 1
        cycle, witness = cycles[0]
        assert len(cycle) == 2 and len(witness) == 2
        assert witness[0].root != witness[1].root
        # Hold/want chains walk through the shared helper.
        for edge in witness:
            assert edge.hold_chain[-1] == "grab_both"
            assert edge.want_chain[-1] == "grab_both"

    def test_graph_accessor_is_cached(self):
        compiled = compile_source(ABBA_SPLIT)
        engine = SummaryEngine(compiled.program, AnalysisConfig())
        assert engine.lock_graph() is engine.lock_graph()

    def test_same_thread_cycle_has_no_distinct_roots(self):
        compiled = compile_source(SAME_THREAD_ABBA)
        engine = SummaryEngine(compiled.program, AnalysisConfig())
        graph = engine.lock_graph()
        # The order cycle exists in the graph...
        assert graph.cycles(4)
        # ...but no per-thread assignment: both edges run on main.
        assert graph.deadlock_cycles(4) == []

    def test_api_lock_graph_helper(self):
        from repro import api
        graph = api.lock_graph(ABBA_SPLIT)
        assert len(graph.deadlock_cycles(4)) == 1


class TestDeadlockCycleDetector:
    def test_split_abba_invisible_to_old_detectors(self):
        """The acceptance shape: acquisitions split across a helper and
        two threads.  Heap lock identities and per-call-site-consistent
        orders keep every pre-existing detector silent — only the
        cross-thread lock graph reports it."""
        findings = _findings(ABBA_SPLIT)
        assert {f.detector for f in findings} == {"deadlock"}
        finding = findings[0]
        assert finding.kind == "deadlock-cycle"
        assert finding.fn_key == "bug_abba"
        hold_want = [p for p in finding.provenance
                     if p["kind"] == "hold-want"]
        assert len(hold_want) == 2
        threads = {p["thread"] for p in hold_want}
        assert len(threads) == 2 and "main thread" in threads
        for p in hold_want:
            assert p["hold_chain"] and p["want_chain"]
            assert p["hold_chain"][-1] == "grab_both"

    def test_three_lock_three_thread_cycle(self):
        findings = _findings(THREE_LOCK_CYCLE)
        cycle_findings = [f for f in findings
                          if f.kind == "deadlock-cycle"]
        assert len(cycle_findings) == 1
        assert len(cycle_findings[0].metadata["cycle"]) == 3
        assert len(cycle_findings[0].metadata["threads"]) == 3

    def test_cycle_bound_caps_the_search(self):
        findings = _findings(THREE_LOCK_CYCLE, deadlock_cycle_bound=2)
        assert not [f for f in findings if f.kind == "deadlock-cycle"]

    def test_cycle_bound_validation(self):
        with pytest.raises(ValueError, match="deadlock_cycle_bound"):
            AnalysisConfig(deadlock_cycle_bound=1)

    def test_same_thread_abba_left_to_lock_order(self):
        findings = _findings(SAME_THREAD_ABBA)
        assert {f.detector for f in findings} == {"lock-order"}


class TestSubsumption:
    def test_deadlock_subsumes_lock_order_on_same_cycle(self):
        findings = _findings(STATIC_CROSS_THREAD_ABBA)
        assert {f.detector for f in findings} == {"deadlock"}
        facts = [p for p in findings[0].provenance
                 if p["kind"] == "subsumed_by"]
        assert len(facts) == 1
        assert facts[0]["detector"] == "lock-order"
        assert facts[0]["finding_kind"] == "conflicting-lock-order"

    def test_recv_deadlock_subsumes_channel_warning(self):
        from repro.corpus.inject import BUG_TEMPLATES
        src = BUG_TEMPLATES["deadlock_channel_recv"].render("X")
        findings = _findings(src)
        assert [(f.detector, f.kind) for f in findings] == \
            [("deadlock", "recv-deadlock")]
        facts = [p for p in findings[0].provenance
                 if p["kind"] == "subsumed_by"]
        assert len(facts) == 1
        assert facts[0]["detector"] == "channel"


class TestBlockingPatterns:
    def test_condvar_hold_lock(self):
        from repro.corpus.inject import BUG_TEMPLATES
        src = BUG_TEMPLATES["deadlock_condvar_hold"].render("X")
        findings = _findings(src)
        assert [(f.detector, f.kind) for f in findings] == \
            [("deadlock", "condvar-hold-lock")]
        assert "META_X" in findings[0].metadata["held"]

    def test_condvar_wait_without_extra_lock_is_clean(self):
        src = """
fn ok_waiter() {
    let state = Arc::new(Mutex::new(0));
    let cv = Arc::new(Condvar::new());
    let state2 = Arc::clone(&state);
    let cv2 = Arc::clone(&cv);
    let h = thread::spawn(move || {
        let g = state2.lock().unwrap();
        cv2.notify_one();
        print(*g);
    });
    let g = state.lock().unwrap();
    let g2 = cv.wait(g).unwrap();
    print(*g2);
    h.join();
}
"""
        assert not _findings(src)

    def test_notifier_not_needing_held_lock_is_clean(self):
        # The waiter holds META, but the notifier never touches it — a
        # wakeup remains possible, so no condvar-hold-lock.
        src = """
static META: Mutex<i32> = Mutex::new(0);
fn ok_free_notifier() {
    let state = Arc::new(Mutex::new(0));
    let cv = Arc::new(Condvar::new());
    let state2 = Arc::clone(&state);
    let cv2 = Arc::clone(&cv);
    let h = thread::spawn(move || {
        let g = state2.lock().unwrap();
        cv2.notify_one();
        print(*g);
    });
    let meta = META.lock().unwrap();
    let g = state.lock().unwrap();
    let g2 = cv.wait(g).unwrap();
    print(*meta + *g2);
    h.join();
}
"""
        assert not [f for f in _findings(src) if f.detector == "deadlock"]

    def test_recv_without_spawn_is_not_recv_deadlock(self):
        # recv_holding_lock has no thread boundary between sender and
        # receiver: the heuristic channel warning stays, the deadlock
        # engine (which requires cross-thread sends) stays out.
        from repro.corpus.inject import BUG_TEMPLATES
        src = BUG_TEMPLATES["recv_holding_lock"].render("X")
        findings = _findings(src)
        assert {f.detector for f in findings} == {"channel"}

    def test_benign_handoff_is_clean(self):
        from repro.corpus.benign import BENIGN_TEMPLATES
        src = BENIGN_TEMPLATES["handoff_lock_then_send"]("X")
        assert not _findings(src)


class TestCondvarNotifyScan:
    def test_notify_in_dead_closure_does_not_suppress(self):
        src = """
fn bug_dead_notify() {
    let state = Mutex::new(0);
    let cv = Condvar::new();
    let never = || {
        cv.notify_one();
    };
    let g = state.lock().unwrap();
    let g2 = cv.wait(g).unwrap();
    print(*g2);
}
"""
        findings = _findings(src)
        assert [(f.detector, f.kind) for f in findings] == \
            [("condvar", "condvar-no-notify")]

    def test_notify_on_other_condvar_does_not_suppress(self):
        src = """
fn bug_wrong_cv() {
    let state = Mutex::new(0);
    let cv_a = Condvar::new();
    let cv_b = Condvar::new();
    let g = state.lock().unwrap();
    let g2 = cv_a.wait(g).unwrap();
    cv_b.notify_one();
    print(*g2);
}
"""
        findings = _findings(src)
        assert [(f.detector, f.kind) for f in findings] == \
            [("condvar", "condvar-no-notify")]

    def test_matching_live_notify_suppresses(self):
        src = """
fn ok_same_cv() {
    let state = Mutex::new(0);
    let cv = Condvar::new();
    let g = state.lock().unwrap();
    let g2 = cv.wait(g).unwrap();
    cv.notify_one();
    print(*g2);
}
"""
        assert not _findings(src)

    def test_spawned_notifier_still_counts(self):
        src = """
fn ok_notified() {
    let state = Arc::new(Mutex::new(0));
    let cv = Arc::new(Condvar::new());
    let cv2 = Arc::clone(&cv);
    let h = thread::spawn(move || {
        cv2.notify_one();
    });
    let g = state.lock().unwrap();
    let g2 = cv.wait(g).unwrap();
    print(*g2);
    h.join();
}
"""
        assert not [f for f in _findings(src) if f.detector == "condvar"]


class TestDeterminism:
    def test_findings_stable_across_jobs(self):
        compiled = compile_source(ABBA_SPLIT)
        baseline = None
        for jobs in (1, 2):
            report = run_detectors(compiled.program,
                                   config=AnalysisConfig(jobs=jobs))
            payload = [(f.detector, f.kind, f.fn_key, f.span.lo)
                       for f in report.findings]
            if baseline is None:
                baseline = payload
            assert payload == baseline
