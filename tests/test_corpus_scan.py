"""Corpus generator, detector evaluation, and unsafe-scan tests."""

import pytest

from repro.corpus import (
    APP_PROFILES, BUG_TEMPLATES, evaluate_detectors, generate_corpus,
)
from repro.driver import compile_source
from repro.study.taxonomy import UnsafeOpKind
from repro.study.unsafe_scan import (
    audit_interior_unsafe, count_unsafe_in_crate, scan_program, scan_sources,
)


class TestCorpusGeneration:
    def test_deterministic(self):
        a = generate_corpus(seed=7)
        b = generate_corpus(seed=7)
        assert [f.text for f in a.files] == [f.text for f in b.files]

    def test_seed_changes_layout(self):
        a = generate_corpus(seed=1)
        b = generate_corpus(seed=2)
        assert [f.name for f in a.files] == [f.name for f in b.files]
        # Shuffled bug placement differs.
        assert [f.text for f in a.files] != [f.text for f in b.files]

    def test_scale_grows_corpus(self):
        small = generate_corpus(seed=0, scale=1)
        big = generate_corpus(seed=0, scale=2)
        assert len(big.files) > len(small.files)
        assert len(big.injected) == 2 * len(small.injected)

    def test_every_project_present(self):
        corpus = generate_corpus(seed=0)
        assert set(corpus.by_project()) == set(APP_PROFILES)

    def test_injected_mix_follows_profiles(self):
        corpus = generate_corpus(seed=0)
        by_project = {}
        for bug in corpus.injected:
            by_project.setdefault(bug.project, []).append(bug.template.name)
        for name, profile in APP_PROFILES.items():
            expected = sum(profile.bug_mix.values())
            assert len(by_project.get(name, [])) == expected

    def test_all_files_compile(self):
        corpus = generate_corpus(seed=0)
        for file in corpus.files:
            compiled = compile_source(file.text, name=file.name)
            assert compiled.program.functions

    def test_ethereum_like_is_blocking_heavy(self):
        corpus = generate_corpus(seed=0)
        from repro.study.taxonomy import BugKind
        eth = [b for b in corpus.injected if b.project == "ethereum_like"]
        blocking = [b for b in eth if b.template.kind is BugKind.BLOCKING]
        assert len(blocking) > len(eth) / 2


class TestDetectorEvaluation:
    @pytest.fixture(scope="class")
    def result(self):
        return evaluate_detectors(generate_corpus(seed=1))

    def test_full_recall(self, result):
        for name, score in result.scores.items():
            assert score.found == score.injected, \
                f"{name} missed {score.missed}"

    def test_no_false_positives(self, result):
        for name, score in result.scores.items():
            assert score.false_positives == 0, name

    def test_both_paper_detectors_evaluated(self, result):
        assert result.scores["use-after-free"].injected > 0
        assert result.scores["double-lock"].injected > 0

    def test_summary_rows_shape(self, result):
        rows = result.summary_rows()
        assert all(len(row) == 5 for row in rows)
        assert rows == sorted(rows)

    def test_unsafe_encapsulation_templates_recalled(self, result):
        # PR 5 templates: both unsafe-leak injections and the
        # interprocedural unchecked-input passthrough, with zero noise.
        leak = result.scores["unsafe-leak"]
        assert (leak.injected, leak.found, leak.false_positives) == (2, 2, 0)
        unchecked = result.scores["unchecked-unsafe-input"]
        assert (unchecked.injected, unchecked.found,
                unchecked.false_positives) == (1, 1, 0)

    def test_benign_checked_interior_unsafe_is_silent(self):
        # The bounds-checked mirror of unchecked_index_passthrough must
        # produce no findings from any detector.
        from repro.api import analyze
        from repro.corpus.benign import BENIGN_TEMPLATES
        report = analyze(BENIGN_TEMPLATES["checked_interior_unsafe"]("t0"))
        assert not report.findings


class TestUnsafeScan:
    SRC = """
    unsafe trait RawAccess {}
    struct Buf { data: Vec<u8>, len: usize }
    unsafe impl Sync for Buf {}
    impl Buf {
        fn read(&self, i: usize) -> u8 {
            if i >= self.len { return 0; }
            unsafe { *self.data.get_unchecked(i) }
        }
        unsafe fn raw(&self) -> *const u8 { self.data.as_ptr() }
    }
    fn main() {
        let b = Buf { data: vec![0u8; 4], len: 4 };
        unsafe {
            let p = b.raw();
            let x = *p;
        }
    }
    """

    def test_counts(self):
        from repro.lang.parser import parse_source
        counts = count_unsafe_in_crate(parse_source(self.SRC))
        assert counts.blocks == 2
        assert counts.functions == 1
        assert counts.traits == 1
        assert counts.impls == 1

    def test_operations_classified(self):
        compiled = compile_source(self.SRC)
        result = scan_program(compiled.program, compiled.crate)
        assert result.operations.get(UnsafeOpKind.MEMORY_OPERATION, 0) > 0 \
            or result.operations.get(UnsafeOpKind.UNSAFE_CALL, 0) > 0

    def test_interior_unsafe_found_and_checked(self):
        compiled = compile_source(self.SRC)
        result = scan_program(compiled.program, compiled.crate)
        audits = {a.fn_key: a for a in result.interior_unsafe_fns}
        assert "Buf::read" in audits
        assert audits["Buf::read"].has_explicit_check

    def test_improper_encapsulation_detected(self):
        bad = """
        fn deref_it(p: *const i32) -> i32 {
            unsafe { *p }
        }
        """
        compiled = compile_source(bad)
        result = scan_program(compiled.program, compiled.crate)
        assert result.improperly_encapsulated

    def test_scan_sources_merges(self):
        result = scan_sources([("a.rs", "unsafe fn f() {}"),
                               ("b.rs", "unsafe fn g() {}")])
        assert result.counts.functions == 2

    def test_corpus_scan_shape(self):
        """The §4 shape on the corpus: unsafe exists, memory operations
        dominate over other unsafe statement kinds."""
        corpus = generate_corpus(seed=0)
        result = scan_sources((f.name, f.text) for f in corpus.files)
        assert result.counts.total > 0
        shares = result.operation_shares()
        mem = shares.get(UnsafeOpKind.MEMORY_OPERATION.value, 0)
        other = shares.get(UnsafeOpKind.OTHER.value, 0)
        assert mem > other
