"""Study-pipeline tests: the reconstructed datasets must reproduce every
aggregate number the paper reports."""

import datetime

from repro.study import dataset, figures, tables
from repro.study.taxonomy import (
    BlockingCause, BlockingPrimitive, BugKind, DataSharing, DoubleLockShape,
    FixStrategy, MemoryEffect, Project, Propagation,
)


class TestTable1:
    def test_row_values(self):
        rows = {r["software"]: r for r in tables.table1_studied_software()}
        assert (rows["Servo"]["mem"], rows["Servo"]["blk"],
                rows["Servo"]["nblk"]) == (14, 13, 18)
        assert (rows["Tock"]["mem"], rows["Tock"]["blk"],
                rows["Tock"]["nblk"]) == (5, 0, 2)
        assert (rows["Ethereum"]["mem"], rows["Ethereum"]["blk"],
                rows["Ethereum"]["nblk"]) == (2, 34, 4)
        assert (rows["TiKV"]["mem"], rows["TiKV"]["blk"],
                rows["TiKV"]["nblk"]) == (1, 4, 3)
        assert (rows["Redox"]["mem"], rows["Redox"]["blk"],
                rows["Redox"]["nblk"]) == (20, 2, 3)
        # libraries NBlk follows Table 4 (11), not Table 1's printed 10 —
        # the paper's own tables disagree by one here (see DESIGN.md).
        assert (rows["libraries"]["mem"], rows["libraries"]["blk"]) == (7, 6)
        assert rows["libraries"]["nblk"] in (
            11, dataset.TABLE1_PUBLISHED_LIBRARIES_NONBLOCKING)

    def test_metadata(self):
        rows = {r["software"]: r for r in tables.table1_studied_software()}
        assert rows["Servo"]["stars"] == 14574
        assert rows["Redox"]["loc_k"] == 199
        assert rows["libraries"]["start"] == "2010/07"

    def test_headline_totals(self):
        totals = tables.table1_totals()
        assert totals["memory"] == 70
        assert totals["blocking"] == 59
        assert totals["non_blocking"] == 41
        assert totals["total"] == 170


class TestTable2:
    def test_cells(self):
        rows = {r["category"]: r for r in tables.table2_memory_categories()}
        assert rows["safe"]["UAF"] == (1, 0)
        assert rows["safe"]["total"] == 1
        assert rows["unsafe"]["Buffer"] == (4, 1)
        assert rows["unsafe"]["Null"] == (12, 4)
        assert rows["unsafe"]["Invalid"] == (5, 3)
        assert rows["unsafe"]["UAF"] == (2, 2)
        assert rows["unsafe"]["total"] == 23
        assert rows["safe -> unsafe"]["Buffer"] == (17, 10)
        assert rows["safe -> unsafe"]["UAF"] == (11, 4)
        assert rows["safe -> unsafe"]["Double free"] == (2, 2)
        assert rows["safe -> unsafe"]["total"] == 31
        assert rows["unsafe -> safe"]["Uninitialized"] == (7, 0)
        assert rows["unsafe -> safe"]["Invalid"] == (4, 0)
        assert rows["unsafe -> safe"]["Double free"] == (4, 0)
        assert rows["unsafe -> safe"]["total"] == 15

    def test_effect_totals(self):
        totals = tables.table2_effect_totals()
        assert totals == {"Buffer": 21, "Null": 12, "Uninitialized": 7,
                          "Invalid": 10, "UAF": 14, "Double free": 6}

    def test_all_memory_bugs_involve_unsafe_except_one(self):
        # Insight 4: all memory-safety issues involve unsafe code (one
        # pre-2016 pure-safe UAF is the single exception).
        pure_safe = [b for b in dataset.MEMORY_BUGS
                     if b.propagation is Propagation.SAFE]
        assert len(pure_safe) == 1


class TestSection5:
    def test_fix_strategies(self):
        fixes = tables.section5_fix_strategies()
        assert fixes["conditionally skip code"] == 30
        assert fixes["adjust lifetime"] == 22
        assert fixes["change unsafe operands"] == 9
        assert fixes["other"] == 9
        assert fixes["skip breakdown"] == {"unsafe": 25,
                                           "interior unsafe": 4, "safe": 1}


class TestTable3:
    def test_rows(self):
        rows = {r["software"]: r for r in tables.table3_blocking_sync()}
        assert rows["Servo"]["Mutex&Rwlock"] == 6
        assert rows["Servo"]["Channel"] == 5
        assert rows["Ethereum"]["Mutex&Rwlock"] == 27
        assert rows["Ethereum"]["Condvar"] == 6
        assert rows["libraries"]["Once"] == 1
        assert rows["Total"]["Mutex&Rwlock"] == 38
        assert rows["Total"]["Condvar"] == 10
        assert rows["Total"]["Channel"] == 6
        assert rows["Total"]["Once"] == 1
        assert rows["Total"]["Other"] == 4
        assert rows["Total"]["total"] == 59

    def test_causes(self):
        causes = tables.section6_blocking_causes()["causes"]
        assert causes["double lock"] == 30
        assert causes["conflicting lock order"] == 7
        assert causes["forgot unlock"] == 1
        assert causes["wait without notify"] == 8

    def test_double_lock_shapes(self):
        shapes = tables.section6_blocking_causes()["double_lock_shapes"]
        assert shapes["first lock in match condition"] == 6
        assert shapes["first lock in if condition"] == 5

    def test_fixes(self):
        fixes = tables.section6_blocking_fixes()
        assert fixes["adjusted synchronisation (total)"] == 51
        assert fixes["adjust lock-guard lifetime"] == 21
        assert fixes["other"] == 8


class TestTable4:
    def test_rows(self):
        rows = {r["software"]: r for r in tables.table4_data_sharing()}
        assert rows["Servo"]["Pointer"] == 7
        assert rows["Servo"]["Mutex"] == 7
        assert rows["Tock"]["O.H."] == 2
        assert rows["libraries"]["Pointer"] == 5
        assert rows["libraries"]["Atomic"] == 3
        assert rows["Total"]["Global"] == 3
        assert rows["Total"]["Pointer"] == 12
        assert rows["Total"]["Sync"] == 3
        assert rows["Total"]["O.H."] == 5
        assert rows["Total"]["Atomic"] == 5
        assert rows["Total"]["Mutex"] == 10
        assert rows["Total"]["MSG"] == 3
        assert rows["Total"]["total"] == 41

    def test_section6_stats(self):
        stats = tables.section6_nonblocking_stats()
        assert stats["message_passing"] == 3
        assert stats["shared_memory"] == 38
        assert stats["share_via_unsafe"] == 23
        assert stats["share_via_interior_unsafe"] == 19
        assert stats["share_via_safe"] == 15
        assert stats["unsynchronized"] == 17
        assert stats["synchronized_but_wrong"] == 21
        assert stats["in_safe_code"] == 25
        assert stats["interior_mutability"] == 13

    def test_fixes(self):
        fixes = tables.section6_nonblocking_stats()["fixes"]
        assert fixes["enforce atomic accesses"] == 20
        assert fixes["enforce access order"] == 10
        assert fixes["avoid shared accesses"] == 5
        assert fixes["make a local copy"] == 1
        assert fixes["change application logic"] == 2


class TestSection4:
    def test_headline_counts(self):
        stats = tables.section4_unsafe_usage()
        assert stats["apps_total"] == 4990
        assert stats["apps_blocks"] == 3665
        assert stats["apps_fns"] == 1302
        assert stats["apps_traits"] == 23
        assert stats["std_blocks"] == 1581
        assert stats["std_fns"] == 861
        assert stats["std_traits"] == 12

    def test_operation_percentages(self):
        pct = tables.section4_unsafe_usage()["operations_pct"]
        assert pct["unsafe memory operation"] == 66
        assert pct["call unsafe function"] == 29

    def test_purpose_percentages(self):
        pct = tables.section4_unsafe_usage()["purposes_pct"]
        assert pct["reuse existing code"] == 42
        assert pct["performance"] == 22
        assert pct["share data across threads"] == 14

    def test_no_compile_error_usages(self):
        stats = tables.section4_unsafe_usage()
        assert stats["no_compile_error"] == 32
        assert stats["no_compile_error_consistency"] == 21

    def test_removals(self):
        removals = tables.section4_removals()
        assert removals["total"] == 130
        assert removals["commits"] == 108
        assert removals["reasons_pct"]["improve memory safety"] == 61
        assert removals["reasons_pct"]["better code structure"] == 24
        assert removals["reasons_pct"]["improve thread safety"] == 10
        assert removals["to_safe"] == 43
        assert removals["to_interior"]["std interior-unsafe function"] == 48
        assert removals["to_interior"][
            "self-implemented interior-unsafe function"] == 29

    def test_interior_unsafe_audit(self):
        audit = tables.section4_interior_unsafe()
        assert audit["std_sample"] == 250
        assert audit["conditions_pct"]["valid memory / valid UTF-8"] == 69
        assert audit["conditions_pct"]["lifetime or ownership"] == 15
        assert audit["checks_pct"]["correct inputs / environment"] == 58
        assert audit["improper"] == 19
        assert audit["improper_std"] == 5
        assert audit["improper_apps"] == 14


class TestFigures:
    def test_fig1_envelope(self):
        releases = figures.fig1_rust_history()
        # Feature churn: heavy before 2016, light after (the paper's
        # "stable since Jan 2016").
        before = [r.feature_changes for r in releases
                  if r.date < figures.STABLE_SINCE]
        after = [r.feature_changes for r in releases
                 if r.date >= figures.STABLE_SINCE]
        assert min(before) > max(after)
        # KLOC grows monotonically.
        kloc = [r.kloc for r in releases]
        assert kloc == sorted(kloc)

    def test_fig2_bucket_counts_sum_to_170(self):
        timeline = figures.fig2_bug_fix_timeline()
        total = sum(sum(series.values()) for series in timeline.values())
        assert total == 170

    def test_fig2_145_after_2016(self):
        assert figures.fig2_fixed_after_2016() == 145

    def test_fig2_projects_present(self):
        timeline = figures.fig2_bug_fix_timeline()
        for name in ("Servo", "Ethereum", "TiKV", "Redox", "libraries"):
            assert name in timeline

    def test_quarters_sorted(self):
        timeline = figures.fig2_bug_fix_timeline()
        for series in timeline.values():
            keys = list(series)
            assert keys == sorted(keys)


class TestDatasetConsistency:
    def test_every_bug_has_kind_labels(self):
        for bug in dataset.ALL_BUGS:
            if bug.kind is BugKind.MEMORY:
                assert bug.effect is not None
                assert bug.propagation is not None
                assert bug.fix_strategy is not None
            elif bug.kind is BugKind.BLOCKING:
                assert bug.primitive is not None
                assert bug.blocking_cause is not None
            else:
                assert bug.sharing is not None

    def test_ids_unique(self):
        ids = [b.bug_id for b in dataset.ALL_BUGS]
        assert len(ids) == len(set(ids))

    def test_deterministic_rebuild(self):
        rebuilt = dataset._build_all()
        assert [b.bug_id for b in rebuilt] == \
            [b.bug_id for b in dataset.ALL_BUGS]
        assert [b.fix_date for b in rebuilt] == \
            [b.fix_date for b in dataset.ALL_BUGS]

    def test_double_lock_shape_only_on_double_locks(self):
        for bug in dataset.BLOCKING_BUGS:
            if bug.double_lock_shape is not DoubleLockShape.NOT_APPLICABLE:
                assert bug.blocking_cause is BlockingCause.DOUBLE_LOCK

    def test_interior_unsafe_sharing_only_with_unsafe_sharing(self):
        for bug in dataset.NONBLOCKING_BUGS:
            if bug.interior_unsafe_sharing:
                assert bug.sharing.is_unsafe_sharing

    def test_usage_sample_size(self):
        assert len(dataset.USAGE_SAMPLE) == 600

    def test_removal_sample_size(self):
        assert len(dataset.UNSAFE_REMOVALS) == 130
