"""Tests for the benchmark-regression observatory: flatten/classify
rules, the diff verdicts, directory mode, and the ``minirust
bench-diff`` CLI (ISSUE acceptance: a synthetic 20% regression is
flagged; identical inputs pass)."""

import json

from repro.cli import main
from repro.obs.benchdiff import (
    DEFAULT_THRESHOLD, bench_diff, classify, diff_payloads, flatten,
)


class TestFlatten:
    def test_nested_numeric_leaves(self):
        payload = {"phases": {"a": 1.0, "b": {"c": 2}}, "n": 3,
                   "list": [4, {"d": 5}], "name": "skip", "flag": True}
        assert flatten(payload) == {
            "phases.a": 1.0, "phases.b.c": 2.0, "n": 3.0,
            "list.0": 4.0, "list.1.d": 5.0,
        }

    def test_scalar_payload(self):
        assert flatten(3.5) == {"value": 3.5}


class TestClassify:
    def test_directions(self):
        assert classify("phases.analysis")[0] == "lower"
        assert classify("engine_wall_s")[0] == "lower"
        assert classify("executor.pickle_bytes")[0] == "lower"
        assert classify("cache.deserialize_seconds.sum")[0] == "lower"
        assert classify("speedup_best")[0] == "higher"
        assert classify("detector.recall")[0] == "higher"
        assert classify("cache.hit")[0] == "higher"
        assert classify("corpus.files")[0] == "neutral"

    def test_ratio_beats_computes(self):
        # "computes_ratio" contains both a lower- and a higher-is-better
        # token; the higher-is-better rule must win (ratios are
        # improvements when they rise).
        assert classify("computes_ratio")[0] == "higher"

    def test_wall_ratio_is_lower_is_better(self):
        # wall_ratio = engine wall / baseline wall: a rise is a
        # slowdown, despite the "ratio" suffix the generic rule reads
        # as a speedup.
        assert classify("wall_ratio")[0] == "lower"
        assert classify("engine.wall_ratio")[0] == "lower"
        assert classify("warm_speedup")[0] == "higher"


OLD = {"phases": {"analysis.wall_s": 1.0}, "speedup": 2.0, "files": 7}


class TestDiffPayloads:
    def test_identical_payloads_pass(self):
        report = diff_payloads(OLD, dict(OLD))
        assert report.regressions == []
        assert report.improvements == []
        assert report.exit_code == 0
        assert len(report.deltas) == 3

    def test_twenty_percent_regression_flagged(self):
        new = {"phases": {"analysis.wall_s": 1.2}, "speedup": 2.0,
               "files": 7}
        report = diff_payloads(OLD, new)
        (reg,) = report.regressions
        assert reg.key == "phases.analysis.wall_s"
        assert abs(reg.rel - 0.2) < 1e-9
        assert report.exit_code == 1

    def test_higher_is_better_drop_flagged(self):
        new = {"phases": {"analysis.wall_s": 1.0}, "speedup": 1.6,
               "files": 7}
        report = diff_payloads(OLD, new)
        (reg,) = report.regressions
        assert reg.key == "speedup" and reg.direction == "higher"

    def test_improvement_is_not_a_regression(self):
        new = {"phases": {"analysis.wall_s": 0.7}, "speedup": 2.5,
               "files": 7}
        report = diff_payloads(OLD, new)
        assert report.regressions == []
        assert {d.key for d in report.improvements} == \
            {"phases.analysis.wall_s", "speedup"}
        assert report.exit_code == 0

    def test_neutral_keys_never_flagged(self):
        report = diff_payloads({"files": 1}, {"files": 100})
        assert report.regressions == report.improvements == []
        assert report.deltas[0].status == "neutral"

    def test_span_identity_fields_ignored(self):
        # Span ids / pids differ between any two runs by construction;
        # they must be dropped, not compared or noted as one-sided.
        old = {"spans": [{"id": 1, "parent": None, "pid": 10, "tid": 5,
                          "duration_s": 1.0}]}
        new = {"spans": [{"id": 7, "pid": 99, "tid": 8,
                          "duration_s": 1.0}]}
        report = diff_payloads(old, new)
        assert [d.key for d in report.deltas] == ["spans.0.duration_s"]
        assert report.notes == []

    def test_threshold_is_a_directed_bar(self):
        # 9% under the default 10% bar: quiet either way.
        new = {"phases": {"analysis.wall_s": 1.09}, "speedup": 2.0,
               "files": 7}
        report = diff_payloads(OLD, new)
        assert report.regressions == [] and report.improvements == []
        # A tighter explicit threshold flags the same delta.
        tight = diff_payloads(OLD, new, threshold=0.05)
        assert len(tight.regressions) == 1

    def test_zero_baseline_and_one_sided_keys_noted(self):
        report = diff_payloads({"a_s": 0.0, "gone_s": 1.0},
                               {"a_s": 0.5, "new_s": 1.0}, file="f.json")
        (reg,) = report.regressions
        assert reg.key == "a_s" and reg.rel == float("inf")
        assert any("gone_s only in OLD" in n for n in report.notes)
        assert any("new_s only in NEW" in n for n in report.notes)
        # The report renders and serialises without blowing up on inf.
        assert "new" in report.render()
        assert report.to_dict()["regressions"][0]["key"] == "a_s"


class TestBenchDiffFiles:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_file_vs_file(self, tmp_path):
        old = self._write(tmp_path / "old.json", OLD)
        new = self._write(tmp_path / "new.json",
                          {"phases": {"analysis.wall_s": 1.25},
                           "speedup": 2.0, "files": 7})
        report = bench_diff(old, new)
        assert report.exit_code == 1
        assert report.regressions[0].file == "new.json"

    def test_dir_vs_dir_matches_artifacts_by_name(self, tmp_path):
        old_dir = tmp_path / "base"
        new_dir = tmp_path / "cand"
        old_dir.mkdir()
        new_dir.mkdir()
        self._write(old_dir / "BENCH_a.json", {"wall_s": 1.0})
        self._write(new_dir / "BENCH_a.json", {"wall_s": 2.0})
        self._write(old_dir / "BENCH_gone.json", {"wall_s": 1.0})
        self._write(new_dir / "BENCH_new.json", {"wall_s": 1.0})
        self._write(new_dir / "not_an_artifact.json", {"wall_s": 9.0})
        report = bench_diff(str(old_dir), str(new_dir))
        (reg,) = report.regressions
        assert reg.file == "BENCH_a.json" and reg.key == "wall_s"
        assert any("BENCH_gone.json only in OLD" in n
                   for n in report.notes)
        assert any("BENCH_new.json only in NEW" in n
                   for n in report.notes)
        assert not any("not_an_artifact" in n for n in report.notes)

    def test_default_threshold_matches_issue(self):
        assert DEFAULT_THRESHOLD == 0.10


class TestBenchDiffCli:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_regression_exits_one(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", OLD)
        new = self._write(tmp_path / "new.json",
                          {"phases": {"analysis.wall_s": 1.2},
                           "speedup": 2.0, "files": 7})
        assert main(["bench-diff", old, new]) == 1
        out = capsys.readouterr().out
        assert "regressions (1)" in out
        assert "phases.analysis.wall_s" in out

    def test_identical_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", OLD)
        assert main(["bench-diff", old, old]) == 0
        assert "no metric moved" in capsys.readouterr().out

    def test_warn_mode_exits_zero_on_regression(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", OLD)
        new = self._write(tmp_path / "new.json",
                          {"phases": {"analysis.wall_s": 5.0},
                           "speedup": 2.0, "files": 7})
        assert main(["bench-diff", old, new, "--warn"]) == 0
        captured = capsys.readouterr()
        assert "regressions (1)" in captured.out
        assert "--warn" in captured.err

    def test_json_output(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", OLD)
        new = self._write(tmp_path / "new.json",
                          {"phases": {"analysis.wall_s": 1.5},
                           "speedup": 2.0, "files": 7})
        assert main(["bench-diff", old, new, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["threshold"] == DEFAULT_THRESHOLD
        assert payload["regressions"][0]["key"] == "phases.analysis.wall_s"

    def test_missing_file_exits_two(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", OLD)
        assert main(["bench-diff", old, str(tmp_path / "nope.json")]) == 2
        assert "bench-diff" in capsys.readouterr().err

    def test_warn_mode_enforces_contract_metrics(self, tmp_path, capsys):
        # The three contract metrics stay hard gates even under --warn:
        # wall_ratio is lower-is-better, so 0.5 -> 0.9 is a regression
        # that must fail the run.
        old = self._write(tmp_path / "old.json",
                          {"engine": {"wall_ratio": 0.5}, "files": 7})
        new = self._write(tmp_path / "new.json",
                          {"engine": {"wall_ratio": 0.9}, "files": 7})
        assert main(["bench-diff", old, new, "--warn"]) == 1
        captured = capsys.readouterr()
        assert "enforced regression" in captured.err
        assert "engine.wall_ratio" in captured.err

    def test_enforce_regex_is_overridable(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json",
                          {"engine": {"wall_ratio": 0.5}, "files": 7})
        new = self._write(tmp_path / "new.json",
                          {"engine": {"wall_ratio": 0.9}, "files": 7})
        # Empty regex disables enforcement; a non-matching one ignores
        # this regression; a matching custom one catches it.
        assert main(["bench-diff", old, new, "--warn",
                     "--enforce", ""]) == 0
        assert main(["bench-diff", old, new, "--warn",
                     "--enforce", "pickle_bytes"]) == 0
        assert main(["bench-diff", old, new, "--warn",
                     "--enforce", "engine"]) == 1
        capsys.readouterr()

    def test_enforce_only_applies_to_regressions(self, tmp_path, capsys):
        # An *improvement* in an enforced metric must not fail the run.
        old = self._write(tmp_path / "old.json",
                          {"engine": {"wall_ratio": 0.9}, "files": 7})
        new = self._write(tmp_path / "new.json",
                          {"engine": {"wall_ratio": 0.5}, "files": 7})
        assert main(["bench-diff", old, new, "--warn"]) == 0
        assert main(["bench-diff", old, new]) == 0
        capsys.readouterr()

    def test_custom_threshold(self, tmp_path):
        old = self._write(tmp_path / "old.json", OLD)
        new = self._write(tmp_path / "new.json",
                          {"phases": {"analysis.wall_s": 1.09},
                           "speedup": 2.0, "files": 7})
        assert main(["bench-diff", old, new]) == 0
        assert main(["bench-diff", old, new, "--threshold", "0.05"]) == 1
