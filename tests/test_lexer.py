"""Lexer unit tests."""

import pytest

from repro.lang.diagnostics import CompileError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind as T


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]   # strip EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is T.EOF

    def test_identifiers(self):
        assert kinds("foo bar_baz _x x1") == [T.IDENT] * 4

    def test_underscore_is_its_own_token(self):
        assert kinds("_") == [T.UNDERSCORE]

    def test_keywords(self):
        assert kinds("fn let mut unsafe impl trait") == [
            T.KW_FN, T.KW_LET, T.KW_MUT, T.KW_UNSAFE, T.KW_IMPL, T.KW_TRAIT]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("fnord letter") == [T.IDENT, T.IDENT]

    def test_self_vs_self_type(self):
        assert kinds("self Self") == [T.KW_SELF, T.KW_SELF_TYPE]


class TestNumbers:
    def test_decimal(self):
        assert values("42") == [42]

    def test_underscore_separator(self):
        assert values("1_000_000") == [1000000]

    def test_hex_octal_binary(self):
        assert values("0xff 0o77 0b1010") == [255, 63, 10]

    def test_suffixes(self):
        tokens = tokenize("42u8 7i64 0usize")
        assert [t.value for t in tokens[:-1]] == [42, 7, 0]
        assert [t.kind for t in tokens[:-1]] == [T.INT] * 3

    def test_float(self):
        tokens = tokenize("3.25")
        assert tokens[0].kind is T.FLOAT
        assert tokens[0].value == 3.25

    def test_range_not_float(self):
        # `1..2` must lex as INT DOTDOT INT, not a float.
        assert kinds("1..2") == [T.INT, T.DOTDOT, T.INT]

    def test_method_on_int_not_float(self):
        assert kinds("1.max") == [T.INT, T.DOT, T.IDENT]

    def test_bad_hex_raises(self):
        with pytest.raises(CompileError):
            tokenize("0x")


class TestStringsAndChars:
    def test_simple_string(self):
        assert values('"hello"') == ["hello"]

    def test_escapes(self):
        assert values(r'"a\nb\t\"q\""') == ['a\nb\t"q"']

    def test_unterminated_string_raises(self):
        with pytest.raises(CompileError):
            tokenize('"oops')

    def test_char_literal(self):
        tokens = tokenize("'a'")
        assert tokens[0].kind is T.CHAR
        assert tokens[0].value == "a"

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == "\n"

    def test_lifetime(self):
        tokens = tokenize("'a 'static")
        assert tokens[0].kind is T.LIFETIME
        assert tokens[0].text == "'a"
        assert tokens[1].kind is T.LIFETIME


class TestOperators:
    def test_maximal_munch(self):
        assert kinds("<<= >>= ..= :: -> => == != <= >=") == [
            T.SHLEQ, T.SHREQ, T.DOTDOTEQ, T.COLONCOLON, T.ARROW, T.FATARROW,
            T.EQEQ, T.NE, T.LE, T.GE]

    def test_compound_assign(self):
        assert kinds("+= -= *= /= %= &= |= ^=") == [
            T.PLUSEQ, T.MINUSEQ, T.STAREQ, T.SLASHEQ, T.PERCENTEQ, T.AMPEQ,
            T.PIPEEQ, T.CARETEQ]

    def test_shift_vs_generics_tokens(self):
        # The lexer always produces SHR; the parser splits it.
        assert kinds("Vec<Vec<i32>>")[-1] is T.SHR

    def test_ampamp_vs_amp(self):
        assert kinds("&& &") == [T.AMPAMP, T.AMP]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [T.IDENT, T.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x */ b") == [T.IDENT, T.IDENT]

    def test_nested_block_comment(self):
        assert kinds("a /* x /* y */ z */ b") == [T.IDENT, T.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(CompileError):
            tokenize("/* oops")


class TestSpans:
    def test_spans_cover_source(self):
        text = "let x = 42;"
        tokens = tokenize(text)
        for token in tokens[:-1]:
            assert text[token.span.lo:token.span.hi] == token.text

    def test_spans_monotonic(self):
        tokens = tokenize("fn main() { let x = 1 + 2; }")
        positions = [t.span.lo for t in tokens[:-1]]
        assert positions == sorted(positions)
