"""Tests for the ``repro.obs`` tracing/metrics/provenance subsystem."""

import json
import os
import threading

import pytest

from conftest import check, detectors_named

from repro import obs
from repro.obs.core import Collector, NOOP_SPAN
from repro.obs.export import phase_timings, render_text, to_json


UAF_SRC = """
fn main() {
    let v: Vec<i32> = Vec::new();
    let p: *const i32 = v.as_ptr();
    drop(v);
    unsafe { print(*p); }
}
"""

DOUBLE_LOCK_SRC = """
static M: Mutex<i32> = Mutex::new(0);

fn main() {
    let a = M.lock().unwrap();
    let b = M.lock().unwrap();
    print(*a + *b);
}
"""

RACE_SRC = """
use std::sync::Arc;
use std::thread;

struct Counter { value: i32 }
unsafe impl Sync for Counter {}

fn touch(c: &Counter, i: i32) {
    let p = &c.value as *const i32 as *mut i32;
    unsafe { *p = *p + i; }
}

fn main() {
    let c = Arc::new(Counter { value: 0 });
    let c2 = Arc::clone(&c);
    let h = thread::spawn(move || {
        touch(&c2, 1);
    });
    touch(&c, 2);
    h.join();
}
"""


class TestSpans:
    def test_nesting(self):
        col = Collector("t")
        with col.span("outer"):
            with col.span("inner"):
                pass
            with col.span("inner2"):
                pass
        assert len(col.roots) == 1
        outer = col.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert outer.children[0].children == []

    def test_timing_monotonicity(self):
        """A parent's wall time bounds the sum of its children's."""
        col = Collector("t")
        with col.span("outer"):
            with col.span("a"):
                sum(range(2000))
            with col.span("b"):
                sum(range(2000))
        outer = col.roots[0]
        assert outer.duration > 0.0
        child_total = sum(c.duration for c in outer.children)
        assert all(c.duration >= 0.0 for c in outer.children)
        assert outer.duration >= child_total
        assert outer.self_time == pytest.approx(
            outer.duration - child_total)
        # Siblings were opened in order, so starts are monotone.
        assert outer.children[0].start <= outer.children[1].start

    def test_attrs_and_find(self):
        col = Collector("t")
        with col.span("compile", file="x.rs"):
            with col.span("parse"):
                pass
        assert col.find_span("parse") is not None
        assert col.find_span("compile").attrs == {"file": "x.rs"}
        assert col.find_span("nope") is None

    def test_exception_unwinds_stack(self):
        col = Collector("t")
        with pytest.raises(ValueError):
            with col.span("outer"):
                with col.span("inner"):
                    raise ValueError("boom")
        assert col.current_span is None
        assert col.roots[0].end is not None
        assert col.roots[0].children[0].end is not None

    def test_raising_span_is_recorded_and_error_tagged(self):
        """A span whose body raises still records its end time, and the
        record is tagged ``error=True`` with the exception type — the
        trace shows where the pipeline died, not a hole."""
        col = Collector("t")
        with pytest.raises(ValueError):
            with col.span("outer"):
                with col.span("inner"):
                    raise ValueError("boom")
        inner = col.roots[0].children[0]
        for span in (col.roots[0], inner):
            assert span.attrs["error"] is True
            assert span.attrs["error_type"] == "ValueError"
            assert span.duration >= 0.0
        # The tag survives into the exporter payload.
        assert col.to_dict()["spans"][0]["attrs"]["error"] is True

    def test_error_tag_preserves_caller_attrs(self):
        col = Collector("t")
        with pytest.raises(RuntimeError):
            with col.span("s", error="mine") as handle:
                handle.set(error_type="custom")
                raise RuntimeError("x")
        assert col.roots[0].attrs == {"error": "mine",
                                      "error_type": "custom"}


class TestSpanIdentity:
    def test_ids_unique_and_parent_links_consistent(self):
        col = Collector("t")
        with col.span("outer"):
            with col.span("inner"):
                pass
            with col.span("inner2"):
                pass
        spans = list(col.iter_spans())
        ids = [s.id for s in spans]
        assert len(ids) == len(set(ids)) == 3
        outer = col.roots[0]
        assert outer.parent_id is None
        assert all(c.parent_id == outer.id for c in outer.children)
        assert all(s.pid == os.getpid() for s in spans)
        assert all(s.tid == threading.get_ident() for s in spans)
        d = outer.to_dict()
        assert d["id"] == outer.id and d["parent"] is None
        assert d["pid"] == os.getpid()

    def test_adopt_spans_reids_and_reparents(self):
        """Grafting a worker collector's roots re-assigns ids from the
        adopting collector's sequence (worker ids collide across
        processes), re-parents under the open span, and preserves the
        worker's pid/tid tags."""
        worker = Collector("w")
        worker._last_id = 100            # force an id collision
        with worker.span("analysis.scc", head="f"):
            with worker.span("sub"):
                pass
        worker.roots[0].pid = 99999      # pretend another process
        main = Collector("m")
        with main.span("analysis.wave"):
            with main.span("decoy"):
                pass
            main.adopt_spans(list(worker.roots))
        wave = main.roots[0]
        assert [c.name for c in wave.children] == ["decoy", "analysis.scc"]
        adopted = wave.children[1]
        assert adopted.parent_id == wave.id
        assert adopted.children[0].parent_id == adopted.id
        assert adopted.pid == 99999
        ids = [s.id for s in main.iter_spans()]
        assert len(ids) == len(set(ids))

    def test_adopt_spans_without_open_span_appends_roots(self):
        worker = Collector("w")
        with worker.span("task"):
            pass
        main = Collector("m")
        main.adopt_spans(list(worker.roots))
        assert [r.name for r in main.roots] == ["task"]
        assert main.roots[0].parent_id is None

    def test_merge_histogram_exact(self):
        a = Collector("a")
        for v in (1.0, 5.0):
            a.observe("lat", v)
        b = Collector("b")
        for v in (0.5, 2.0, 3.0):
            b.observe("lat", v)
        a.merge_histogram("lat", b.histograms["lat"])
        hist = a.histograms["lat"]
        assert hist.count == 5
        assert hist.total == 11.5
        assert hist.min == 0.5 and hist.max == 5.0


class TestMetrics:
    def test_counter_aggregation(self):
        col = Collector("t")
        col.count("hits")
        col.count("hits")
        col.count("hits", 3)
        col.count("other", 2)
        assert col.counters == {"hits": 5, "other": 2}

    def test_gauge_last_write_wins(self):
        col = Collector("t")
        col.gauge("seed", 1)
        col.gauge("seed", 7)
        assert col.gauges["seed"] == 7

    def test_histogram(self):
        col = Collector("t")
        for v in (1.0, 2.0, 3.0):
            col.observe("lat", v)
        hist = col.histograms["lat"]
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == 2.0


class TestNoopPath:
    def test_disabled_helpers_record_nothing(self):
        assert obs.get_collector() is None
        assert obs.span("x") is NOOP_SPAN
        with obs.span("x") as s:
            assert s is NOOP_SPAN
            s.set(k=1)
        obs.count("c")
        obs.gauge("g", 1)
        obs.observe("h", 1)
        assert obs.get_collector() is None

    def test_noop_span_is_reentrant(self):
        with obs.span("a"):
            with obs.span("a"):
                pass

    def test_pipeline_runs_clean_without_collector(self):
        """Instrumented code paths must work with collection disabled —
        and leave no collector behind."""
        report = check(UAF_SRC)
        assert report.findings
        assert obs.get_collector() is None

    def test_collecting_restores_previous(self):
        with obs.collecting("outer-col") as outer:
            with obs.collecting("inner-col") as inner:
                assert obs.get_collector() is inner
            assert obs.get_collector() is outer
        assert obs.get_collector() is None

    def test_install_uninstall(self):
        col = obs.install("explicit")
        try:
            assert obs.get_collector() is col
            obs.count("x")
            assert col.counters == {"x": 1}
        finally:
            assert obs.uninstall() is col
        assert obs.get_collector() is None

    def test_install_over_active_collector_raises(self):
        """Silently replacing an active collector would drop its spans
        and counters — install() refuses instead.  Re-installing the
        same object stays an idempotent no-op."""
        col = obs.install("first")
        try:
            with pytest.raises(RuntimeError, match="already installed"):
                obs.install("second")
            assert obs.get_collector() is col
            assert obs.install(col) is col     # same object: fine
        finally:
            obs.uninstall()
        assert obs.get_collector() is None


class TestPipelineInstrumentation:
    def test_compile_and_detect_spans(self):
        with obs.collecting() as col:
            check(UAF_SRC)
        phases = phase_timings(col)
        for name in ("compile", "compile.lex", "compile.parse",
                     "compile.hir-table", "compile.mir-lower", "detectors"):
            assert name in phases
        assert col.counters["analysis.points_to.miss"] >= 1
        assert col.counters["detector.use-after-free.findings"] >= 1
        # Repeated lookups of the same body's points-to must hit.
        assert col.counters["analysis.points_to.hit"] >= 1

    def test_interpreter_counters(self):
        from repro.driver import compile_source
        from repro.mir.interp import ScheduleConfig, run_program
        src = "fn main() { let x = 1 + 2; print(x); }"
        with obs.collecting() as col:
            compiled = compile_source(src)
            result = run_program(compiled.program,
                                 schedule=ScheduleConfig(seed=3))
        assert result.ok
        assert col.counters["interp.steps"] == result.steps
        assert col.counters["interp.outcome.ok"] == 1
        assert col.gauges["interp.schedule_seed"] == 3
        assert col.find_span("interp.run") is not None

    def test_guard_region_cache_key_is_tuple(self):
        """A body literally named ``foo#try`` must not collide with the
        cached ``include_try`` variant of ``foo`` (old string-concat key)."""
        from repro.detectors.base import AnalysisContext
        from repro.driver import compile_source

        compiled = compile_source(DOUBLE_LOCK_SRC)
        ctx = AnalysisContext(compiled.program)
        body = compiled.program.body("main")
        plain = ctx.guard_regions(body, include_try=False)
        with_try = ctx.guard_regions(body, include_try=True)
        assert ("main", False) in ctx._guard_regions
        assert ("main", True) in ctx._guard_regions
        # Same body, same flag → cache hit returns the same object.
        assert ctx.guard_regions(body, include_try=False) is plain
        assert ctx.guard_regions(body, include_try=True) is with_try


class TestProvenance:
    def test_uaf_finding_has_provenance(self):
        report = check(UAF_SRC)
        uaf = detectors_named(report, "use-after-free")
        assert uaf
        trail = uaf[0].provenance
        assert trail, "UAF finding must carry provenance"
        kinds = [f["kind"] for f in trail]
        assert "points-to" in kinds
        assert "freed-state" in kinds or "storage-dead" in kinds
        assert "pointer-use" in kinds
        # JSON-able end to end.
        json.dumps(trail)

    def test_double_lock_finding_has_provenance(self):
        report = check(DOUBLE_LOCK_SRC)
        dl = detectors_named(report, "double-lock")
        assert dl
        trail = dl[0].provenance
        kinds = [f["kind"] for f in trail]
        assert kinds[0] == "guard-region"
        assert "lock-identity" in kinds
        assert "reacquire" in kinds
        json.dumps(trail)

    def test_explain_renders_trail(self):
        report = check(UAF_SRC)
        text = report.explain()
        assert "because:" in text
        assert "[points-to]" in text

    def test_fact_collision_safe(self):
        from repro.obs.provenance import fact
        f = fact("tag", "a note", kind="detail-kind", note="detail-note",
                 extra=frozenset({("a", 1)}))
        assert f["kind"] == "tag"        # the tag wins
        assert f["note"] == "a note"
        assert f["extra"] == [["a", 1]]

    def test_render_facts_never_drops_unrecognised_shapes(self):
        """Every fact renders something: unknown kinds keep their tag,
        a kind-less dict falls back to the generic label, and non-dict
        facts (pre-``fact()`` detectors) render via repr instead of
        crashing ``minirust explain``."""
        from repro.obs.provenance import render_facts
        lines = render_facts([
            {"kind": "brand-new-kind", "note": "novel", "x": 1},
            {"note": "no kind at all"},
            "a bare string fact",
            ("a", "tuple"),
        ])
        assert len(lines) == 4
        assert "[brand-new-kind] novel" in lines[0]
        assert "x=1" in lines[0]
        assert "[fact] no kind at all" in lines[1]
        assert "'a bare string fact'" in lines[2]
        assert "tuple" in lines[3]

    def test_data_race_explain_renders_all_facts(self):
        """The race detector's four provenance kinds all survive the
        explain rendering — none silently dropped."""
        report = check(RACE_SRC)
        races = detectors_named(report, "data-race")
        assert races
        text = report.explain()
        for kind in ("thread-escape", "shared-location", "lockset",
                     "summary-chain"):
            assert f"[{kind}]" in text, f"{kind} missing from explain"


class TestExporters:
    def test_json_round_trip(self):
        with obs.collecting("rt") as col:
            with obs.span("phase", file="x"):
                obs.count("n", 2)
                obs.observe("h", 0.5)
            obs.gauge("g", 9)
        blob = to_json(col)
        data = json.loads(blob)
        assert data["collector"] == "rt"
        assert data["counters"] == {"n": 2}
        assert data["gauges"] == {"g": 9}
        assert data["histograms"]["h"]["count"] == 1
        assert data["spans"][0]["name"] == "phase"
        assert data["spans"][0]["attrs"] == {"file": "x"}
        assert data["spans"][0]["duration_s"] >= 0.0
        # And the collector dict round-trips through dumps/loads intact.
        assert json.loads(json.dumps(col.to_dict())) == col.to_dict()

    def test_report_json_round_trip(self):
        report = check(UAF_SRC)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["counts"]["use-after-free"] >= 1
        finding = data["findings"][0]
        assert {"detector", "kind", "severity", "message", "fn",
                "metadata", "provenance"} <= set(finding)
        assert finding["location"]["line"] >= 1

    def test_render_text_shape(self):
        with obs.collecting() as col:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            obs.count("c", 1)
        text = render_text(col)
        assert "== trace" in text
        assert "outer" in text and "inner" in text
        assert "└─" in text
        assert "== counters ==" in text

    def test_phase_timings_accumulate(self):
        col = Collector("t")
        for _ in range(3):
            with col.span("a"):
                with col.span("b"):
                    pass
        flat = phase_timings(col)
        assert set(flat) == {"a", "a.b"}
        assert flat["a"] >= flat["a.b"] >= 0.0

    def test_write_json(self, tmp_path):
        with obs.collecting() as col:
            with obs.span("p"):
                pass
        path = tmp_path / "obs.json"
        payload = obs.write_json(col, str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert "phases" in on_disk and "p" in on_disk["phases"]
