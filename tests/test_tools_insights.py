"""Tests for the IDE-annotation tools, fix suggestions, the explicit
unlock extension, and the insights scorecard."""

from conftest import check, compile_, detectors_named, interp

from repro.study.insights import INSIGHTS, SUGGESTIONS, verify_all_insights
from repro.tools.annotate import (
    annotate_critical_sections, annotate_lifetimes,
)
from repro.tools.fixes import suggest_fixes


LOCKED = """
fn f(m: &Mutex<i32>) {
    let g = m.lock().unwrap();
    print(*g);
    drop(g);
    let tail = 1;
    print(tail);
}
"""

FIG8 = """
struct Inner { m: i32 }
fn connect(m: i32) -> Result<i32, i32> { Ok(m) }
fn do_request(client: &RwLock<Inner>) {
    match connect(client.read().unwrap().m) {
        Ok(x) => {
            let mut inner = client.write().unwrap();
            inner.m = x;
        }
        Err(e) => {}
    };
}
"""


class TestAnnotate:
    def test_lifetimes_report_named_vars(self):
        compiled = compile_(LOCKED)
        annotated = annotate_lifetimes(compiled, "f")
        names = {v.name for v in annotated.lifetimes}
        assert "g" in names and "tail" in names

    def test_lifetime_line_ordering(self):
        compiled = compile_(LOCKED)
        annotated = annotate_lifetimes(compiled, "f")
        for var in annotated.lifetimes:
            if var.first_line is not None and var.last_line is not None:
                assert var.first_line <= var.last_line

    def test_guard_drop_line_reported(self):
        compiled = compile_(LOCKED)
        annotated = annotate_lifetimes(compiled, "f")
        guard = next(v for v in annotated.lifetimes if v.name == "g")
        assert guard.drop_lines   # drop(g) runs drop glue

    def test_critical_sections_highlight_implicit_unlock(self):
        compiled = compile_(FIG8)
        annotated = annotate_critical_sections(compiled, "do_request")
        kinds = {cs.kind for cs in annotated.critical_sections}
        assert {"read", "write"} <= kinds
        read = next(cs for cs in annotated.critical_sections
                    if cs.kind == "read")
        # The read guard is held across the match arms' lines.
        assert read.held_lines
        assert max(read.held_lines) > read.acquire_line

    def test_render_mentions_sections(self):
        compiled = compile_(FIG8)
        text = annotate_critical_sections(compiled, "do_request").render()
        assert "critical section" in text and "implicit unlock" in text


class TestExplicitUnlock:
    """Suggestion 7, implemented as a MiniRust extension."""

    SRC = """
    fn f(m: &Mutex<i32>) {
        let g = m.lock().unwrap();
        g.unlock();
        let h = m.lock().unwrap();
        print(*h);
    }
    fn main() {
        let m = Mutex::new(7);
        f(&m);
    }
    """

    def test_static_region_ends_at_unlock(self):
        assert not detectors_named(check(self.SRC), "double-lock")

    def test_dynamic_unlock_releases(self):
        result = interp(self.SRC)
        assert result.ok and result.stdout == ["7"]

    def test_without_unlock_still_detected(self):
        src = self.SRC.replace("g.unlock();", "")
        assert detectors_named(check(src), "double-lock")
        assert interp(src).outcome == "deadlock"


class TestFixSuggestions:
    def test_double_lock_suggestion(self):
        report = check(FIG8)
        lines = suggest_fixes(report.findings)
        assert any("guard" in line and "Figure 8" in line for line in lines)

    def test_every_detector_kind_has_catalogue_entry(self):
        sources = {
            "use-after-free": """
                fn main() {
                    let v = vec![1];
                    let p = v.as_ptr();
                    drop(v);
                    unsafe { let x = *p; }
                }""",
            "invalid-free": """
                struct F { b: Vec<u8> }
                unsafe fn g() {
                    let f = alloc(8) as *mut F;
                    *f = F { b: vec![0u8; 4] };
                }""",
        }
        for kind, src in sources.items():
            lines = suggest_fixes(check(src).findings)
            assert lines
            assert all("no catalogued strategy" not in l for l in lines)


class TestInsights:
    def test_all_insights_hold(self):
        scorecard = verify_all_insights()
        failing = {n: msg for n, (ok, msg) in scorecard.items() if not ok}
        assert not failing, failing

    def test_eleven_insights_eight_suggestions(self):
        assert len(INSIGHTS) == 11
        assert len(SUGGESTIONS) == 8

    def test_insight4_evidence_wording(self):
        ok, msg = verify_all_insights()[4]
        assert ok and "69/70" in msg


class TestAnnotateDropLines:
    def test_scope_end_drop_reported_at_scope_end_line(self):
        src = """fn f() {
    let v = vec![1];
    let x = 1;
    print(x);
}"""
        compiled = compile_(src)
        annotated = annotate_lifetimes(compiled, "f")
        v = next(var for var in annotated.lifetimes if var.name == "v")
        # v is dropped at the function's closing brace (line 5), not at
        # its declaration line.
        assert v.drop_lines and max(v.drop_lines) >= 4
