"""Thread-escape analysis edge cases (repro.analysis.escape).

The lockset race detector is only as good as its notion of "crosses a
thread boundary"; these tests pin the three doors the paper's bug
corpus actually uses — spawn-closure captures (by move *and* by
borrow), ``Arc::clone`` chains routed through helper functions, and
channel sends — plus the negative: a closure that is merely *called*
never escapes anything.
"""

from conftest import compile_

from repro.analysis.engine import SummaryEngine


def escape_of(src: str):
    compiled = compile_source_cached(src)
    engine = SummaryEngine(compiled.program)
    return engine, engine.thread_escape()


_cache = {}


def compile_source_cached(src: str):
    if src not in _cache:
        _cache[src] = compile_(src)
    return _cache[src]


class TestClosureCaptures:
    """Move vs borrow captures both escape; local calls never do."""

    MOVE_SRC = """
use std::sync::Arc;
use std::thread;

fn main() {
    let data = Arc::new(7);
    let h = thread::spawn(move || {
        let v = *data;
    });
    h.join();
}
"""

    BORROW_SRC = """
use std::sync::Arc;
use std::thread;

fn main() {
    let data = Arc::new(7);
    let h = thread::spawn(|| {
        let v = *data;
    });
    h.join();
}
"""

    def test_move_capture_escapes(self):
        engine, te = escape_of(self.MOVE_SRC)
        assert len(te.spawn_sites) == 1
        site = te.spawn_sites[0]
        assert site.spawner == "main"
        assert site.closure in te.thread_reachable
        assert site.captures, "capture map should not be empty"
        captured = next(iter(site.captures.values()))
        assert te.escapes("main", captured)
        assert te.escape_reasons[("main", captured)] == "spawn-capture"

    def test_borrow_capture_escapes(self):
        """Borrow captures lower as ``copy`` of the full local — the
        escape analysis must treat them exactly like move captures."""
        engine, te = escape_of(self.BORROW_SRC)
        assert len(te.spawn_sites) == 1
        site = te.spawn_sites[0]
        assert site.captures
        captured = next(iter(site.captures.values()))
        assert te.escapes("main", captured)
        assert te.escape_reasons[("main", captured)] == "spawn-capture"

    def test_move_and_borrow_share_the_allocation_target(self):
        """Both capture styles resolve to the same kind of global id:
        the Arc allocation's heap site."""
        for src in (self.MOVE_SRC, self.BORROW_SRC):
            engine, te = escape_of(src)
            heap = {t for t in te.shared_targets if t[0] == "heap"}
            assert heap, f"no heap target for {src[:40]!r}"

    def test_locally_called_closure_does_not_escape(self):
        src = """
fn main() {
    let data = 7;
    let f = || {
        let v = data;
    };
    f();
}
"""
        engine, te = escape_of(src)
        assert te.spawn_sites == []
        assert te.thread_reachable == set()
        assert not te.escape_roots.get("main")
        assert te.shared_targets == set()


class TestArcThroughHelper:
    """An Arc handle cloned inside a helper still traces back to the
    original allocation site — by value and by reference."""

    def _src(self, sig: str, call: str) -> str:
        return f"""
use std::sync::{{Arc, Mutex}};
use std::thread;

fn dup({sig}) -> Arc<Mutex<i32>> {{
    Arc::clone(&a)
}}

fn main() {{
    let c = Arc::new(Mutex::new(0));
    let c2 = dup({call});
    let h = thread::spawn(move || {{
        let g = c2.lock().unwrap();
    }});
    h.join();
}}
"""

    def test_clone_through_helper_by_value(self):
        engine, te = escape_of(self._src("a: Arc<Mutex<i32>>", "c"))
        heap = {t for t in te.shared_targets if t[0] == "heap"}
        assert heap, "Arc allocation should be a shared target"
        assert any(te.is_shared(t) for t in heap)
        # The helper's return summary says "aliases argument 0".
        assert 0 in engine.summary("dup").returns

    def test_clone_through_helper_by_ref(self):
        engine, te = escape_of(self._src("a: &Arc<Mutex<i32>>", "&c"))
        heap = {t for t in te.shared_targets if t[0] == "heap"}
        assert heap, "clone of a borrowed handle still aliases the " \
            "allocation (argval pass-through in the points-to loads)"
        assert 0 in engine.summary("dup").returns


class TestChannelSend:
    """A value sent over a channel escapes with reason channel-send."""

    SRC = """
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

fn main() {
    let (tx, rx) = mpsc::channel();
    let payload = Arc::new(5);
    tx.send(payload);
    let h = thread::spawn(move || {
        let got = rx.recv().unwrap();
    });
    h.join();
}
"""

    def test_sent_value_escapes(self):
        engine, te = escape_of(self.SRC)
        sent = [(key, local) for (key, local), reason
                in te.escape_reasons.items() if reason == "channel-send"]
        assert sent, "the sent payload should be an escape root"
        key, local = sent[0]
        assert key == "main"
        assert te.escapes(key, local)

    def test_sent_allocation_is_shared(self):
        engine, te = escape_of(self.SRC)
        heap = {t for t in te.shared_targets if t[0] == "heap"}
        assert heap, "the Arc behind the sent value is shared data"
