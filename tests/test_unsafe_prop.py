"""Unsafe-provenance analysis, its detectors, and the §5 audit.

Covers the PR-5 tentpole (interprocedural unsafe-provenance summaries)
and its satellites: the three new detectors, the summary-carried lock
orders (ABBA split across a helper), hypothesis properties (fixpoint
termination on recursive templates, monotone composition), and
byte-identity of the audit output across worker counts and cache
temperature.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from conftest import compile_

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import SummaryEngine
from repro.analysis.unsafe_prop import (
    CALLER_DELEGATED, CHECKED, UNCHECKED, UnsafeProvenance, arg_taint,
    classify_interior_unsafe, compute_unsafe_provenance, taint_seeds,
    unsafe_born_locals,
)
from repro.api import AnalysisSession, analyze, audit_unsafe
from repro.detectors.base import AnalysisContext
from repro.detectors.registry import detector_by_name


def summary_of(src: str, key: str):
    program = compile_(src).program
    return SummaryEngine(program).summary(key)


TABLE_SRC = """
struct Table { data: *mut u8, len: usize }
impl Table {
    fn get_raw(&self, index: usize) -> u8 {
        unsafe { *self.data.add(index) }
    }
    pub fn get(&self, index: usize) -> u8 {
        self.get_raw(index)
    }
    pub fn get_checked(&self, index: usize) -> u8 {
        if index >= self.len { return 0; }
        unsafe { *self.data.add(index) }
    }
}
"""

LEAK_SRC = """
fn make() -> *mut u8 {
    unsafe { alloc(16) }
}
pub fn expose() -> *mut u8 {
    make()
}
fn keep_private() -> *mut u8 {
    make()
}
"""


class TestProvenanceComponent:
    def test_taint_seeds_only_raw_and_int_args(self):
        src = """
        fn f(p: *const i32, n: usize, v: &Vec<i32>, o: Option<i32>) {
            print(n);
        }
        """
        body = compile_(src).program.functions["f"]
        positions = {pos for s in taint_seeds(body).values() for pos in s}
        assert positions == {0, 1}

    def test_taint_flows_through_arithmetic(self):
        src = """
        fn f(n: usize) -> usize {
            let doubled = n * 2;
            let shifted = doubled + 1;
            shifted
        }
        """
        body = compile_(src).program.functions["f"]
        taint = arg_taint(body)
        assert frozenset({0}) in taint.values()

    def test_direct_unguarded_sink(self):
        prov = summary_of(TABLE_SRC, "Table::get_raw").unsafe_provenance
        assert 1 in prov.arg_sinks
        kind, hop, _span = prov.arg_sinks[1]
        assert kind == "offset"
        assert hop is None

    def test_sink_composes_through_wrapper(self):
        prov = summary_of(TABLE_SRC, "Table::get").unsafe_provenance
        assert 1 in prov.arg_sinks
        _kind, hop, _span = prov.arg_sinks[1]
        assert hop == ("Table::get_raw", 1)

    def test_dominating_guard_suppresses_sink(self):
        prov = summary_of(TABLE_SRC, "Table::get_checked").unsafe_provenance
        assert not prov.arg_sinks
        assert 1 in prov.guarded_args

    def test_returns_unsafe_ptr_propagates(self):
        assert summary_of(LEAK_SRC, "make") \
            .unsafe_provenance.returns_unsafe_ptr
        assert summary_of(LEAK_SRC, "expose") \
            .unsafe_provenance.returns_unsafe_ptr

    def test_unsafe_born_requires_unsafe_region(self):
        src = """
        fn f(v: &Vec<i32>) -> *const i32 {
            let p = v.as_ptr();
            p
        }
        """
        body = compile_(src).program.functions["f"]
        assert not unsafe_born_locals(body)

    def test_delegation_to_unsafe_fn(self):
        src = """
        unsafe fn raw_write(p: *mut i32) { *p = 1; }
        fn forward(p: *mut i32) {
            unsafe { raw_write(p); }
        }
        """
        prov = summary_of(src, "forward").unsafe_provenance
        assert 0 in prov.delegated_args
        # The callee's own summary also carries the deref sink, so the
        # wrapper composes it through the hop — both facts coexist.
        assert prov.arg_sinks.get(0, (None, None, None))[1] == \
            ("raw_write", 0)

    def test_classification_order(self):
        assert classify_interior_unsafe(UnsafeProvenance()) == CHECKED
        assert classify_interior_unsafe(UnsafeProvenance(
            delegated_args=frozenset({0}))) == CALLER_DELEGATED
        assert classify_interior_unsafe(UnsafeProvenance(
            arg_sinks={0: ("deref", None, None)})) == UNCHECKED


class TestUnsafeDetectors:
    def test_leak_requires_pub(self):
        report = analyze(LEAK_SRC)
        leaks = report.report.by_detector("unsafe-leak")
        assert [f.fn_key for f in leaks] == ["expose"]

    def test_static_escape(self):
        src = """
        static GLOBAL_PTR: *mut u8 = ptr::null_mut();
        fn stash() {
            let p = unsafe { alloc(8) };
            GLOBAL_PTR = p;
        }
        """
        report = analyze(src)
        leaks = report.report.by_detector("unsafe-leak")
        assert len(leaks) == 1
        assert leaks[0].kind == "raw-ptr-static-escape"

    def test_safe_ptr_return_not_a_leak(self):
        src = """
        pub fn null_handle() -> *mut i32 {
            ptr::null_mut()
        }
        """
        assert not analyze(src).findings

    def test_unchecked_input_reported_with_chain(self):
        report = analyze(TABLE_SRC)
        hits = report.report.by_detector("unchecked-unsafe-input")
        assert {f.fn_key for f in hits} == {"Table::get_raw", "Table::get"}
        wrapper = [f for f in hits if f.fn_key == "Table::get"][0]
        chains = [fact for fact in wrapper.provenance
                  if fact.get("kind") == "summary-chain"]
        assert chains and chains[0]["chain"] == \
            ["Table::get", "Table::get_raw"]

    def test_unsafe_fn_bodies_skipped(self):
        src = """
        unsafe fn deref(p: *const i32) -> i32 { *p }
        """
        report = analyze(src)
        assert not report.report.by_detector("unchecked-unsafe-input")

    def test_audit_detector_silent_without_flag(self):
        report = analyze(TABLE_SRC)
        assert not report.report.by_detector("interior-unsafe-audit")

    def test_audit_classifies_under_flag(self):
        config = AnalysisConfig(audit_unsafe=True,
                                detectors=("interior-unsafe-audit",))
        report = analyze(TABLE_SRC, config=config)
        rows = {f.fn_key: f.metadata["classification"]
                for f in report.findings}
        assert rows == {"Table::get_raw": UNCHECKED,
                        "Table::get_checked": CHECKED}


class TestLockOrderViaSummaries:
    ABBA_SPLIT = """
    static LOCK_A: Mutex<i32> = Mutex::new(0);
    static LOCK_B: Mutex<i32> = Mutex::new(0);
    fn both(first: &Mutex<i32>, second: &Mutex<i32>) {
        let f = first.lock().unwrap();
        let s = second.lock().unwrap();
        print(*f + *s);
    }
    fn forward() { both(&LOCK_A, &LOCK_B); }
    fn backward() { both(&LOCK_B, &LOCK_A); }
    """

    def test_abba_split_across_helper_detected(self):
        # Regression: the helper's guard regions only carry
        # argument-relative lock ids, which `_global_ids` drops; the
        # summary-carried lock_orders must surface the cycle once the
        # callers resolve both ids to statics.
        report = analyze(self.ABBA_SPLIT)
        hits = report.report.by_detector("lock-order")
        assert len(hits) == 1
        cycle = set(hits[0].metadata["cycle"])
        assert any("LOCK_A" in c for c in cycle)
        assert any("LOCK_B" in c for c in cycle)

    def test_consistent_order_through_helper_is_silent(self):
        src = self.ABBA_SPLIT.replace("both(&LOCK_B, &LOCK_A)",
                                      "both(&LOCK_A, &LOCK_B)")
        report = analyze(src)
        assert not report.report.by_detector("lock-order")

    def test_summary_records_arg_relative_order(self):
        program = compile_(self.ABBA_SPLIT).program
        summary = SummaryEngine(program).summary("both")
        kinds = {(a[0], b[0]) for a, b in summary.lock_orders}
        assert ("arg", "arg") in kinds


# ---------------------------------------------------------------------------
# Hypothesis properties: termination and monotone composition
# ---------------------------------------------------------------------------

@st.composite
def recursive_chain_program(draw):
    """A chain of helpers ending in an unsafe sink, with optional direct
    or mutual recursion and optional guards mixed in."""
    depth = draw(st.integers(min_value=1, max_value=4))
    recursion = draw(st.sampled_from(["none", "self", "mutual"]))
    guarded_at = draw(st.integers(min_value=-1, max_value=depth - 1))
    lines = ["fn sink(p: *mut i32, n: usize) -> i32 {",
             "    unsafe { *p.add(n) }",
             "}"]
    prev = "sink"
    for level in range(depth):
        name = f"hop{level}"
        guard = f"if n >= {level + 3} {{ return 0; }}" \
            if guarded_at == level else ""
        # The recursion condition branches on `p`, not `n`: a branch on
        # tainted `n` would (correctly) register as a guard on position 1
        # and mask the arg_sinks assertions below.
        recurse = ""
        if recursion == "self" and level == depth - 1:
            recurse = f"if p.is_null() {{ return {name}(p, n); }}"
        lines.append(
            f"fn {name}(p: *mut i32, n: usize) -> i32 {{ {guard} "
            f"{recurse} {prev}(p, n) }}")
        prev = name
    if recursion == "mutual":
        lines.append(f"fn ping(p: *mut i32, n: usize) -> i32 {{ "
                     f"pong(p, n) }}")
        lines.append(f"fn pong(p: *mut i32, n: usize) -> i32 {{ "
                     f"if p.is_null() {{ return ping(p, n); }} {prev}(p, n) }}")
    return "\n".join(lines), depth, guarded_at, recursion


@given(recursive_chain_program())
@settings(max_examples=30, deadline=None)
def test_fixpoint_terminates_and_tracks_chain(case):
    src, depth, guarded_at, recursion = case
    program = compile_(src).program
    engine = SummaryEngine(program)         # diverging fixpoint = hang
    top = engine.summary(f"hop{depth - 1}")
    prov = top.unsafe_provenance
    if guarded_at == depth - 1:
        # The topmost hop guards n before forwarding: n is sanitised.
        assert 1 not in prov.arg_sinks
    elif guarded_at == -1:
        # Nothing guards the chain: both args flow to the sink.
        assert 1 in prov.arg_sinks
    if recursion == "mutual":
        ping = engine.summary("ping").unsafe_provenance
        pong = engine.summary("pong").unsafe_provenance
        if guarded_at == -1:
            assert 1 in ping.arg_sinks and 1 in pong.arg_sinks


@given(st.integers(min_value=0, max_value=999))
@settings(max_examples=20, deadline=None)
def test_wrapper_provenance_contains_helper_provenance(salt):
    """Monotone composition: an unguarded pass-through wrapper reports at
    least the argument sinks of its helper (positions shifted through the
    call's argument sources)."""
    src = f"""
    fn helper_{salt}(p: *mut i32, n: usize) -> i32 {{
        unsafe {{ *p.add(n) }}
    }}
    fn wrap_{salt}(p: *mut i32, n: usize) -> i32 {{
        helper_{salt}(p, n)
    }}
    """
    program = compile_(src).program
    engine = SummaryEngine(program)
    helper = engine.summary(f"helper_{salt}").unsafe_provenance
    wrapper = engine.summary(f"wrap_{salt}").unsafe_provenance
    assert set(helper.arg_sinks) <= set(wrapper.arg_sinks)


# ---------------------------------------------------------------------------
# Determinism: jobs sweep and cache temperature
# ---------------------------------------------------------------------------

class TestAuditDeterminism:
    @pytest.fixture(scope="class")
    def corpus_sources(self):
        from repro.corpus import generate_corpus
        corpus = generate_corpus(seed=3)
        return [(f.name, f.text) for f in corpus.files]

    def test_audit_identical_across_jobs(self, corpus_sources):
        payloads = []
        for jobs in (1, 2, 4):
            result = audit_unsafe(corpus_sources,
                                  config=AnalysisConfig(jobs=jobs))
            payloads.append(json.dumps(result.to_dict(), sort_keys=True))
        assert payloads[0] == payloads[1] == payloads[2]

    def test_audit_identical_cold_vs_warm(self, corpus_sources, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path))
        cold = audit_unsafe(corpus_sources, config=config)
        warm = audit_unsafe(corpus_sources, config=config)
        assert json.dumps(cold.to_dict()) == json.dumps(warm.to_dict())

    def test_findings_identical_across_jobs(self, corpus_sources):
        names = ("unsafe-leak", "unchecked-unsafe-input")
        rendered = []
        for jobs in (1, 2):
            with AnalysisSession(AnalysisConfig(jobs=jobs,
                                                detectors=names)) as s:
                reports = s.analyze_sources(corpus_sources)
            rendered.append(json.dumps(
                [r.to_dict() for r in reports], sort_keys=True))
        assert rendered[0] == rendered[1]

    def test_audit_report_shape(self, corpus_sources):
        result = audit_unsafe(corpus_sources[:4])
        payload = result.to_dict()
        assert set(payload) == {"schema_version", "total", "breakdown",
                                "functions"}
        assert payload["total"] == len(payload["functions"])
        assert sum(payload["breakdown"].values()) == payload["total"]
        assert result.render()


class TestDetectorRegistration:
    def test_new_detectors_registered(self):
        for name in ("unsafe-leak", "unchecked-unsafe-input",
                     "interior-unsafe-audit"):
            assert detector_by_name(name) is not None

    def test_summary_component_in_context(self):
        program = compile_(TABLE_SRC).program
        ctx = AnalysisContext(program)
        prov = ctx.summary("Table::get").unsafe_provenance
        assert 1 in prov.arg_sinks
