"""Tests for the dataflow analyses: CFG, liveness, init, points-to,
storage ranges, guard regions, call graph."""

from conftest import compile_, mir_of

from repro.analysis.callgraph import build_call_graph, direct_locks
from repro.analysis.init import compute_init
from repro.analysis.lifetime import (
    compute_guard_regions, compute_storage_ranges, lock_identity,
    resolve_ref_chain,
)
from repro.analysis.liveness import compute_liveness, live_at_statement
from repro.analysis.points_to import compute_points_to
from repro.mir.cfg import Cfg
from repro.mir.nodes import StatementKind, TerminatorKind


def local_named(body, name):
    for local in body.locals:
        if local.name == name:
            return local.index
    raise AssertionError(f"no local named {name}")


class TestCfg:
    def _body(self):
        return mir_of("""
            fn main() {
                let mut x = 0;
                while x < 10 {
                    if x == 5 { x += 2; } else { x += 1; }
                }
            }""")

    def test_preds_and_succs_are_inverse(self):
        cfg = Cfg(self._body())
        for bb in range(cfg.num_blocks):
            for succ in cfg.successors[bb]:
                assert bb in cfg.predecessors[succ]

    def test_rpo_starts_at_entry(self):
        cfg = Cfg(self._body())
        assert cfg.reverse_post_order()[0] == 0

    def test_entry_dominates_all(self):
        cfg = Cfg(self._body())
        for bb in cfg.reachable_blocks():
            assert cfg.dominates(0, bb)

    def test_loop_detected(self):
        cfg = Cfg(self._body())
        assert cfg.back_edges()
        assert cfg.loops()

    def test_straight_line_has_no_loops(self):
        cfg = Cfg(mir_of("fn main() { let x = 1; let y = x + 1; }"))
        assert not cfg.back_edges()

    def test_can_reach(self):
        cfg = Cfg(self._body())
        rpo = cfg.reverse_post_order()
        assert cfg.can_reach(0, rpo[-1])


class TestLiveness:
    def test_used_variable_live_before_use(self):
        body = mir_of("fn main() { let x = 1; let y = x + 1; print(y); }")
        exit_states = compute_liveness(body)
        x = local_named(body, "x")
        # x must be live somewhere (between def and use).
        live_anywhere = set()
        for bb in range(len(body.blocks)):
            for state in live_at_statement(body, exit_states, bb):
                live_anywhere |= state
        assert x in live_anywhere

    def test_dead_after_last_use(self):
        body = mir_of("fn main() { let x = 1; print(x); let y = 2; print(y); }")
        exit_states = compute_liveness(body)
        x = local_named(body, "x")
        last_exit = exit_states.get(len(body.blocks) - 1, frozenset())
        assert x not in last_exit


class TestInit:
    def test_assigned_local_is_init(self):
        body = mir_of("fn main() { let x = 1; print(x); }")
        entry = compute_init(body)
        x = local_named(body, "x")
        final_block = len(body.blocks) - 1
        assert ("init", x) in entry.get(final_block, frozenset()) or any(
            ("init", x) in st for st in entry.values())

    def test_moved_local_is_marked(self):
        body = mir_of("""
            fn main() {
                let v: Vec<i32> = Vec::new();
                let w = v;
                print(1);
            }""")
        entry = compute_init(body)
        v = local_named(body, "v")
        assert any(("moved", v) in st for st in entry.values())

    def test_args_init_at_entry(self):
        body = mir_of("fn f(a: i32) { print(a); }", "f")
        entry = compute_init(body)
        assert ("init", 1) in entry[0]


class TestPointsTo:
    def test_ref_points_to_target(self):
        body = mir_of("fn main() { let x = 1; let r = &x; print(*r); }")
        pt = compute_points_to(body)
        x = local_named(body, "x")
        r = local_named(body, "r")
        assert pt.may_point_to_local(r, x)

    def test_cast_preserves_target(self):
        body = mir_of("""
            fn main() {
                let x = 1;
                let p = &x as *const i32 as *mut i32;
            }""")
        pt = compute_points_to(body)
        assert pt.may_point_to_local(local_named(body, "p"),
                                     local_named(body, "x"))

    def test_alloc_site_target(self):
        body = mir_of("fn main() { let b = Box::new(1); }")
        pt = compute_points_to(body)
        b = local_named(body, "b")
        assert any(t[0] == "heap" for t in pt.targets(b))

    def test_as_ptr_points_into_receiver_allocation(self):
        body = mir_of("""
            fn main() {
                let v = vec![1];
                let p = v.as_ptr();
            }""")
        pt = compute_points_to(body)
        p = local_named(body, "p")
        v = local_named(body, "v")
        assert pt.targets(p) & pt.targets(v)

    def test_may_alias_through_copies(self):
        body = mir_of("""
            fn main() {
                let x = 1;
                let p = &x;
                let q = p;
            }""")
        pt = compute_points_to(body)
        assert pt.may_alias(local_named(body, "p"), local_named(body, "q"))

    def test_distinct_targets_do_not_alias(self):
        body = mir_of("""
            fn main() {
                let x = 1;
                let y = 2;
                let p = &x;
                let q = &y;
            }""")
        pt = compute_points_to(body)
        assert not pt.may_alias(local_named(body, "p"),
                                local_named(body, "q"))


class TestStorageRanges:
    def test_scoped_local_not_live_outside(self):
        body = mir_of("""
            fn main() {
                if true {
                    let inner = 1;
                    print(inner);
                }
                let outer = 2;
                print(outer);
            }""")
        ranges = compute_storage_ranges(body)
        inner = local_named(body, "inner")
        # The block where `outer` is assigned must not include `inner`.
        outer = local_named(body, "outer")
        outer_points = {
            (bb, i) for bb, i, s in body.iter_statements()
            if s.kind is StatementKind.ASSIGN and s.place.local == outer}
        for point in outer_points:
            assert not ranges.is_live_at(inner, point)


class TestGuardRegions:
    def test_region_ends_at_guard_drop(self):
        body = mir_of("""
            fn f(m: &Mutex<i32>) {
                let g = m.lock().unwrap();
                print(*g);
                drop(g);
                let x = 1;
            }""", "f")
        regions = compute_guard_regions(body)
        assert len(regions) == 1
        region = regions[0]
        assert region.kind == "mutex"
        # The statement assigning x must be outside the region.
        for bb, i, s in body.iter_statements():
            if s.kind is StatementKind.ASSIGN and \
                    body.locals[s.place.local].name == "x":
                assert (bb, i) not in region.points

    def test_match_scrutinee_region_covers_arms(self):
        body = mir_of("""
            struct Inner { m: i32 }
            fn f(client: &RwLock<Inner>) {
                match client.read().unwrap().m {
                    0 => { let a = 1; }
                    _ => { let b = 2; }
                };
            }""", "f")
        regions = compute_guard_regions(body)
        read = [r for r in regions if r.kind == "read"]
        assert read
        # Arm-body assignments are inside the read region.
        names = {"a", "b"}
        covered = 0
        for bb, i, s in body.iter_statements():
            if s.kind is StatementKind.ASSIGN and \
                    (body.locals[s.place.local].name in names):
                if (bb, i) in read[0].points:
                    covered += 1
        assert covered >= 1

    def test_lock_identity_same_receiver(self):
        body = mir_of("""
            fn f(m: &Mutex<i32>) {
                let a = m.lock().unwrap();
                drop(a);
                let b = m.lock().unwrap();
            }""", "f")
        regions = compute_guard_regions(body)
        assert len(regions) == 2
        assert regions[0].lock_ids & regions[1].lock_ids

    def test_try_lock_excluded_by_default(self):
        body = mir_of("""
            fn f(m: &Mutex<i32>) {
                let a = m.try_lock();
            }""", "f")
        assert compute_guard_regions(body) == []
        assert compute_guard_regions(body, include_try=True)


class TestRefChain:
    def test_resolves_through_ref_and_copy(self):
        body = mir_of("""
            fn f(m: &Mutex<i32>) {
                let g = m.lock().unwrap();
            }""", "f")
        # Find the lock call receiver and resolve it to the arg.
        for _bb, term in body.iter_terminators():
            if term.kind is TerminatorKind.CALL and term.func and \
                    "lock" in term.func.name:
                base, proj = resolve_ref_chain(body,
                                               term.args[0].place.local)
                assert base == 1   # the &Mutex argument
                return
        raise AssertionError("no lock call found")


class TestCallGraph:
    def test_edges(self):
        compiled = compile_("""
            fn a() { b(); }
            fn b() { c(); }
            fn c() {}
            fn main() { a(); }""")
        graph = build_call_graph(compiled.program)
        assert "a" in graph.callees("main")
        assert graph.transitive_callees("main") == {"a", "b", "c"}

    def test_spawn_edges_separate(self):
        compiled = compile_("""
            fn main() {
                let h = thread::spawn(move || { work(); });
            }
            fn work() {}""")
        graph = build_call_graph(compiled.program)
        assert graph.spawn_edges["main"]
        assert "main::{closure#0}" not in graph.edges["main"]
        spawned = graph.reachable_from_spawn()
        assert "work" in spawned

    def test_lock_summary_on_arg(self):
        compiled = compile_("""
            fn locks(m: &Mutex<i32>) { let g = m.lock().unwrap(); }
            fn main() {}""")
        graph = build_call_graph(compiled.program)
        assert ("arg", 0, (), "mutex") in graph.lock_summaries["locks"]

    def test_lock_summary_transitive(self):
        compiled = compile_("""
            fn inner(m: &Mutex<i32>) { let g = m.lock().unwrap(); }
            fn outer(m: &Mutex<i32>) { inner(m); }
            fn main() {}""")
        graph = build_call_graph(compiled.program)
        assert ("arg", 0, (), "mutex") in graph.lock_summaries["outer"]

    def test_static_lock_summary(self):
        compiled = compile_("""
            static LOCK: Mutex<i32> = Mutex::new(0);
            fn locks() { let g = LOCK.lock().unwrap(); }
            fn main() {}""")
        graph = build_call_graph(compiled.program)
        assert any(l[0] == "static" and l[1] == "LOCK"
                   for l in graph.lock_summaries["locks"])
