"""Unit tests for the runtime value & memory model (repro.mir.values)."""

import pytest

from repro.mir.values import (
    MOVED, UNINIT, AllocState, Allocation, BoxValue, DeadlockError,
    EnumValue, GuardValue, Memory, Pointer, RcValue, RuntimePanic,
    StructValue, TupleValue, UBError, UBKind, VecValue, deep_copy, err,
    none, ok, some,
)


class TestMemory:
    def test_allocate_returns_unique_ids(self):
        mem = Memory()
        ids = {mem.allocate(i) for i in range(100)}
        assert len(ids) == 100

    def test_check_live_on_live(self):
        mem = Memory()
        a = mem.allocate(42)
        assert mem.check_live(a).value == 42

    def test_free_marks_freed(self):
        mem = Memory()
        a = mem.allocate(42)
        mem.free(a)
        with pytest.raises(UBError) as exc:
            mem.check_live(a)
        assert exc.value.kind is UBKind.USE_AFTER_FREE

    def test_double_free_raises(self):
        mem = Memory()
        a = mem.allocate(42)
        mem.free(a)
        with pytest.raises(UBError) as exc:
            mem.free(a)
        assert exc.value.kind is UBKind.DOUBLE_FREE

    def test_dead_stack_distinct_from_freed(self):
        mem = Memory()
        a = mem.allocate(1, kind="stack")
        mem.mark_dead_stack(a)
        with pytest.raises(UBError) as exc:
            mem.check_live(a)
        assert exc.value.kind is UBKind.DANGLING_STACK

    def test_revive_stack_resets_value(self):
        mem = Memory()
        a = mem.allocate(1, kind="stack")
        mem.mark_dead_stack(a)
        mem.revive_stack(a)
        assert mem.check_live(a).value is UNINIT

    def test_unknown_allocation(self):
        mem = Memory()
        with pytest.raises(UBError):
            mem.get(9999)

    def test_live_count(self):
        mem = Memory()
        a = mem.allocate(1)
        b = mem.allocate(2)
        mem.free(a)
        assert mem.live_count() == 1

    def test_alloc_free_counters(self):
        mem = Memory()
        a = mem.allocate(1)
        mem.free(a)
        assert mem.allocs == 1 and mem.frees == 1


class TestValues:
    def test_enum_constructors(self):
        assert some(5).variant_index == 1 and some(5).payload == [5]
        assert none().variant_index == 0 and none().payload == []
        assert ok(1).variant_index == 0
        assert err("e").variant_index == 1

    def test_pointer_extend(self):
        p = Pointer(3, (1,))
        q = p.extend("field")
        assert q.alloc_id == 3 and q.path == (1, "field")

    def test_null_pointer(self):
        p = Pointer.null_ptr()
        assert p.null

    def test_struct_index_of(self):
        s = StructValue("P", [1, 2], ["x", "y"])
        assert s.index_of("y") == 1
        assert s.index_of("z") is None

    def test_deep_copy_is_structural(self):
        s = StructValue("P", [TupleValue([1, 2]), [3, 4]], ["a", "b"])
        c = deep_copy(s)
        c.fields[0].elements[0] = 99
        c.fields[1][0] = 99
        assert s.fields[0].elements[0] == 1
        assert s.fields[1][0] == 3

    def test_deep_copy_shares_handles(self):
        # Handle values (Vec/Box/Rc) stay shared — copying the handle is
        # exactly the ownership-duplication the detectors look for.
        v = VecValue(buffer=7)
        s = StructValue("S", [v], ["v"])
        c = deep_copy(s)
        assert c.fields[0] is v

    def test_sentinels_are_singletons(self):
        from repro.mir.values import _Moved, _Uninit
        assert _Uninit() is UNINIT
        assert _Moved() is MOVED

    def test_error_messages(self):
        e = UBError(UBKind.DOUBLE_FREE, "boom")
        assert "double-free" in str(e)
        p = RuntimePanic("bang")
        assert "panic" in str(p)
        d = DeadlockError("stuck", {1: "lock 3"})
        assert "deadlock" in str(d)
        assert d.waiting == {1: "lock 3"}


class TestInterpreterMemoryAccounting:
    def test_balanced_allocs_and_frees(self):
        from conftest import interp
        result = interp("""
            fn main() {
                let mut v = Vec::new();
                for i in 0..10 { v.push(Box::new(i)); }
                drop(v);
            }""")
        assert result.ok

    def test_leak_detection_via_forget(self):
        from repro.driver import compile_source
        from repro.mir.interp import Interpreter
        src_drop = """
            fn main() {
                let b = Box::new(1);
                drop(b);
            }"""
        src_forget = """
            fn main() {
                let b = Box::new(1);
                mem::forget(b);
            }"""
        dropped = Interpreter(compile_source(src_drop).program)
        r1 = dropped.run()
        forgotten = Interpreter(compile_source(src_forget).program)
        r2 = forgotten.run()
        assert r1.ok and r2.ok
        # mem::forget leaks the heap allocation.
        assert forgotten.memory.frees < dropped.memory.frees
