"""End-to-end integration tests: realistic multi-module programs through
the full pipeline (parse → MIR → detectors → interpretation)."""

from conftest import check, compile_, interp

from repro.mir.pretty import body_stats, pretty_body, pretty_program
from repro.study.unsafe_scan import scan_program


KV_STORE = """
// A TiKV-flavoured in-memory store: sharded maps behind RwLocks, a write
// queue, worker threads, and an interior-unsafe fast path done right.

struct Shard { data: HashMap<String, i32>, hits: i32 }

struct Store { shard: Arc<RwLock<Shard>> }

impl Store {
    fn new() -> Store {
        Store {
            shard: Arc::new(RwLock::new(Shard {
                data: HashMap::new(),
                hits: 0,
            })),
        }
    }

    fn put(&self, key: String, value: i32) {
        let mut guard = self.shard.write().unwrap();
        guard.data.insert(key, value);
    }

    fn get(&self, key: String) -> Option<i32> {
        let mut guard = self.shard.write().unwrap();
        guard.hits += 1;
        match guard.data.get(key) {
            Some(v) => Some(*v),
            None => None,
        }
    }

    fn hits(&self) -> i32 {
        let guard = self.shard.read().unwrap();
        guard.hits
    }
}

fn main() {
    let store = Store::new();
    store.put(String::from("a"), 1);
    store.put(String::from("b"), 2);
    let a = store.get(String::from("a")).unwrap_or(0);
    let missing = store.get(String::from("zzz")).unwrap_or(-1);
    println!("{} {} {}", a, missing, store.hits());
}
"""


class TestKvStore:
    def test_runs_correctly(self):
        result = interp(KV_STORE)
        assert result.ok, result.error
        assert result.stdout == ["1 -1 2"]

    def test_no_findings(self):
        report = check(KV_STORE)
        assert not report.errors, report.render()

    def test_scan_sees_no_unsafe(self):
        compiled = compile_(KV_STORE)
        result = scan_program(compiled.program, compiled.crate)
        assert result.counts.total == 0


PIPELINE = """
// A Servo-flavoured pipeline: producer thread, worker pool via channels,
// and a result aggregation mutex.

fn worker(rx: &Receiver<i32>, out: &Arc<Mutex<i32>>) {
    while let Ok(job) = rx.recv() {
        let mut total = out.lock().unwrap();
        *total += job * job;
    }
}

fn main() {
    let (tx, rx) = channel();
    let out = Arc::new(Mutex::new(0));
    let out2 = Arc::clone(&out);
    let h = thread::spawn(move || {
        while let Ok(job) = rx.recv() {
            let mut total = out2.lock().unwrap();
            *total += job * job;
        }
    });
    for i in 0..5 {
        tx.send(i);
    }
    drop(tx);
    h.join();
    println!("{}", *out.lock().unwrap());
}
"""


class TestPipeline:
    def test_runs_to_completion(self):
        result = interp(PIPELINE)
        assert result.ok, result.error
        assert result.stdout == ["30"]   # 0+1+4+9+16

    def test_clean_under_detectors(self):
        report = check(PIPELINE)
        assert not report.errors, report.render()

    def test_deterministic_across_seeds(self):
        outputs = {interp(PIPELINE, seed=s, quantum=3).stdout[0]
                   for s in range(5)}
        assert outputs == {"30"}


UNSAFE_ARENA = """
// A Redox-flavoured arena with a sound interior-unsafe API: bounds are
// checked before every unchecked access (the §4.3 good practice).

struct Arena { storage: Vec<i32>, len: usize }

impl Arena {
    fn with_capacity(n: usize) -> Arena {
        Arena { storage: vec![0; n], len: n }
    }
    fn load(&self, index: usize) -> i32 {
        if index >= self.len {
            return 0;
        }
        unsafe { *self.storage.get_unchecked(index) }
    }
    fn store(&mut self, index: usize, value: i32) {
        if index >= self.len {
            return;
        }
        self.storage[index] = value;
    }
}

fn main() {
    let mut arena = Arena::with_capacity(8);
    arena.store(3, 77);
    arena.store(100, 1);
    println!("{} {} {}", arena.load(3), arena.load(100), arena.load(7));
}
"""


class TestArena:
    def test_runs(self):
        result = interp(UNSAFE_ARENA)
        assert result.ok, result.error
        assert result.stdout == ["77 0 0"]

    def test_interior_unsafe_judged_well_encapsulated(self):
        compiled = compile_(UNSAFE_ARENA)
        scan = scan_program(compiled.program, compiled.crate)
        audits = {a.fn_key: a for a in scan.interior_unsafe_fns}
        assert "Arena::load" in audits
        assert audits["Arena::load"].has_explicit_check
        assert not scan.improperly_encapsulated

    def test_no_buffer_overflow_findings(self):
        report = check(UNSAFE_ARENA)
        assert not [f for f in report.findings
                    if f.detector == "buffer-overflow"
                    and f.metadata.get("definite")]


class TestPrettyPrinter:
    def test_pretty_program_covers_all_functions(self):
        compiled = compile_(KV_STORE)
        text = pretty_program(compiled.program)
        for key in compiled.program.functions:
            assert key in text

    def test_body_stats(self):
        compiled = compile_(KV_STORE)
        stats = body_stats(compiled.program.functions["main"])
        assert stats["blocks"] > 0
        assert stats["statements"] > 0
        assert stats["drops"] > 0
        assert stats["unsafe_statements"] == 0

    def test_unsafe_marker_in_dump(self):
        compiled = compile_("""
            fn main() {
                let x = 1;
                let p = &x as *const i32;
                unsafe { let y = *p; }
            }""")
        assert "// unsafe" in pretty_body(compiled.program.functions["main"])
