"""Interpreter tests: language semantics, dynamic UB detection, and the
concurrency runtime."""

import pytest

from conftest import interp

from repro.mir.values import UBKind


class TestBasicEvaluation:
    def test_arithmetic_and_print(self):
        r = interp('fn main() { println!("{}", 2 + 3 * 4); }')
        assert r.ok and r.stdout == ["14"]

    def test_function_calls(self):
        r = interp("""
            fn square(x: i32) -> i32 { x * x }
            fn main() { println!("{}", square(7)); }""")
        assert r.stdout == ["49"]

    def test_recursion(self):
        r = interp("""
            fn fib(n: i32) -> i32 {
                if n < 2 { return n; }
                fib(n - 1) + fib(n - 2)
            }
            fn main() { println!("{}", fib(10)); }""")
        assert r.stdout == ["55"]

    def test_loops_and_mutation(self):
        r = interp("""
            fn main() {
                let mut total = 0;
                for i in 0..10 { total += i; }
                let mut n = total;
                while n > 40 { n -= 1; }
                println!("{} {}", total, n);
            }""")
        assert r.stdout == ["45 40"]

    def test_break_continue(self):
        r = interp("""
            fn main() {
                let mut acc = 0;
                for i in 0..10 {
                    if i % 2 == 0 { continue; }
                    if i > 6 { break; }
                    acc += i;
                }
                println!("{}", acc);
            }""")
        assert r.stdout == ["9"]   # 1 + 3 + 5

    def test_match_enum(self):
        r = interp("""
            enum Shape { Circle(i32), Square(i32), Empty }
            fn area(s: Shape) -> i32 {
                match s {
                    Shape::Circle(r) => 3 * r * r,
                    Shape::Square(w) => w * w,
                    Shape::Empty => 0,
                }
            }
            fn main() {
                println!("{} {} {}", area(Shape::Circle(2)),
                         area(Shape::Square(3)), area(Shape::Empty));
            }""")
        assert r.stdout == ["12 9 0"]

    def test_structs_and_methods(self):
        r = interp("""
            struct Rect { w: i32, h: i32 }
            impl Rect {
                fn new(w: i32, h: i32) -> Rect { Rect { w: w, h: h } }
                fn area(&self) -> i32 { self.w * self.h }
                fn grow(&mut self, by: i32) { self.w += by; }
            }
            fn main() {
                let mut r = Rect::new(3, 4);
                r.grow(1);
                println!("{}", r.area());
            }""")
        assert r.stdout == ["16"]

    def test_vec_operations(self):
        r = interp("""
            fn main() {
                let mut v = Vec::new();
                for i in 0..5 { v.push(i * i); }
                let mut total = 0;
                for i in 0..v.len() { total += v[i]; }
                println!("{} {} {}", v.len(), total, v.pop().unwrap());
            }""")
        assert r.stdout == ["5 30 16"]

    def test_hashmap(self):
        r = interp("""
            fn main() {
                let mut m = HashMap::new();
                m.insert("a", 1);
                m.insert("b", 2);
                let total = m.get("a").unwrap();
                println!("{} {}", *total, m.contains_key("c"));
            }""")
        assert r.stdout == ["1 false"]

    def test_option_methods(self):
        r = interp("""
            fn main() {
                let some: Option<i32> = Some(4);
                let nothing: Option<i32> = None;
                println!("{} {} {}", some.unwrap_or(0), nothing.unwrap_or(9),
                         some.is_some());
            }""")
        assert r.stdout == ["4 9 true"]

    def test_closures(self):
        r = interp("""
            fn main() {
                let base = 10;
                let add = move |x: i32| x + base;
                println!("{}", add(5));
            }""")
        assert r.stdout == ["15"]

    def test_box_rc(self):
        r = interp("""
            fn main() {
                let b = Box::new(21);
                let r = Rc::new(2);
                let r2 = Rc::clone(&r);
                println!("{}", *b * *r2);
            }""")
        assert r.stdout == ["42"]

    def test_statics(self):
        r = interp("""
            static BASE: i32 = 40;
            fn main() { println!("{}", BASE + 2); }""")
        assert r.stdout == ["42"]

    def test_string_ops(self):
        r = interp("""
            fn main() {
                let s = String::from("hello");
                println!("{} {}", s.len(), s);
            }""")
        assert r.stdout == ["5 hello"]


class TestPanics:
    def test_index_out_of_bounds_panics(self):
        r = interp("fn main() { let v = vec![1]; let x = v[3]; }")
        assert r.outcome == "panic"
        assert "out of bounds" in str(r.error)

    def test_unwrap_none_panics(self):
        r = interp("""
            fn main() {
                let n: Option<i32> = None;
                let x = n.unwrap();
            }""")
        assert r.outcome == "panic"

    def test_divide_by_zero_panics(self):
        r = interp("fn main() { let x = 1 / 0; }")
        assert r.outcome == "panic"

    def test_explicit_panic(self):
        r = interp('fn main() { panic!("boom"); }')
        assert r.outcome == "panic"
        assert "boom" in str(r.error)

    def test_assert_failure(self):
        r = interp("fn main() { assert!(1 == 2); }")
        assert r.outcome == "panic"

    def test_refcell_double_borrow_mut_panics(self):
        r = interp("""
            fn main() {
                let cell = RefCell::new(1);
                let a = cell.borrow_mut();
                let b = cell.borrow_mut();
            }""")
        assert r.outcome == "panic"
        assert "Borrow" in str(r.error)


class TestDynamicUB:
    def test_use_after_free(self):
        r = interp("""
            fn main() {
                let v = vec![1, 2, 3];
                let p = v.as_ptr();
                drop(v);
                unsafe { let x = *p; }
            }""")
        assert r.outcome == "ub"
        assert r.error.kind is UBKind.USE_AFTER_FREE

    def test_double_free_via_ptr_read(self):
        r = interp("""
            fn main() {
                let b = Box::new(5);
                unsafe {
                    let b2 = ptr::read(&b);
                    drop(b2);
                }
            }""")
        assert r.outcome == "ub"
        assert r.error.kind is UBKind.DOUBLE_FREE

    def test_uninit_read(self):
        r = interp("""
            fn main() {
                unsafe {
                    let p = alloc(8) as *mut i32;
                    let x = *p;
                }
            }""")
        assert r.outcome == "ub"
        assert r.error.kind is UBKind.UNINIT_READ

    def test_invalid_free_assignment(self):
        r = interp("""
            struct FILE { buf: Vec<u8> }
            fn main() {
                unsafe {
                    let f = alloc(64) as *mut FILE;
                    *f = FILE { buf: vec![0u8; 8] };
                }
            }""")
        assert r.outcome == "ub"
        assert r.error.kind is UBKind.INVALID_FREE

    def test_get_unchecked_oob(self):
        r = interp("""
            fn main() {
                let v = vec![1, 2];
                unsafe { let x = *v.get_unchecked(9); }
            }""")
        assert r.outcome == "ub"
        assert r.error.kind is UBKind.OUT_OF_BOUNDS

    def test_null_deref(self):
        r = interp("""
            fn main() {
                let p: *const i32 = ptr::null();
                unsafe { let x = *p; }
            }""")
        assert r.outcome == "ub"
        assert r.error.kind is UBKind.NULL_DEREF

    def test_dangling_stack_pointer(self):
        r = interp("""
            fn main() {
                let p = {
                    let x = 5;
                    &x as *const i32
                };
                unsafe { let y = *p; }
            }""")
        assert r.outcome == "ub"

    def test_ptr_write_then_read_ok(self):
        r = interp("""
            fn main() {
                unsafe {
                    let p = alloc(8) as *mut i32;
                    ptr::write(p, 11);
                    println!("{}", *p);
                }
            }""")
        assert r.ok and r.stdout == ["11"]


class TestConcurrency:
    def test_spawn_join(self):
        r = interp("""
            fn main() {
                let data = Arc::new(Mutex::new(0));
                let d2 = Arc::clone(&data);
                let h = thread::spawn(move || {
                    let mut g = d2.lock().unwrap();
                    *g += 5;
                });
                h.join();
                println!("{}", *data.lock().unwrap());
            }""")
        assert r.ok and r.stdout == ["5"]

    def test_many_workers(self):
        r = interp("""
            fn main() {
                let total = Arc::new(Mutex::new(0));
                let t1 = Arc::clone(&total);
                let t2 = Arc::clone(&total);
                let h1 = thread::spawn(move || {
                    let mut g = t1.lock().unwrap();
                    *g += 1;
                });
                let h2 = thread::spawn(move || {
                    let mut g = t2.lock().unwrap();
                    *g += 2;
                });
                h1.join();
                h2.join();
                println!("{}", *total.lock().unwrap());
            }""")
        assert r.stdout == ["3"]

    def test_self_double_lock_deadlocks(self):
        r = interp("""
            fn main() {
                let m = Mutex::new(0);
                let a = m.lock().unwrap();
                let b = m.lock().unwrap();
            }""")
        assert r.outcome == "deadlock"

    def test_figure8_deadlocks_dynamically(self):
        r = interp("""
            struct Inner { m: i32 }
            fn connect(m: i32) -> Result<i32, i32> { Ok(m) }
            fn main() {
                let client = RwLock::new(Inner { m: 5 });
                match connect(client.read().unwrap().m) {
                    Ok(x) => {
                        let mut inner = client.write().unwrap();
                        inner.m = x;
                    }
                    Err(e) => {}
                };
            }""")
        assert r.outcome == "deadlock"

    def test_figure8_fixed_runs(self):
        r = interp("""
            struct Inner { m: i32 }
            fn connect(m: i32) -> Result<i32, i32> { Ok(m) }
            fn main() {
                let client = RwLock::new(Inner { m: 5 });
                let result = connect(client.read().unwrap().m);
                match result {
                    Ok(x) => {
                        let mut inner = client.write().unwrap();
                        inner.m = x;
                    }
                    Err(e) => {}
                };
                println!("{}", client.read().unwrap().m);
            }""")
        assert r.ok and r.stdout == ["5"]

    def test_condvar_signalling(self):
        r = interp("""
            fn main() {
                let flag = Arc::new(Mutex::new(false));
                let cv = Arc::new(Condvar::new());
                let f2 = Arc::clone(&flag);
                let c2 = Arc::clone(&cv);
                let h = thread::spawn(move || {
                    let mut g = f2.lock().unwrap();
                    *g = true;
                    c2.notify_one();
                });
                let mut g = flag.lock().unwrap();
                while !*g {
                    g = cv.wait(g).unwrap();
                }
                println!("done");
                h.join();
            }""")
        assert r.ok and r.stdout == ["done"]

    def test_condvar_missed_signal_deadlocks(self):
        r = interp("""
            fn main() {
                let m = Mutex::new(false);
                let cv = Condvar::new();
                let g = m.lock().unwrap();
                let g2 = cv.wait(g).unwrap();
            }""")
        assert r.outcome == "deadlock"

    def test_channel_roundtrip(self):
        r = interp("""
            fn main() {
                let (tx, rx) = channel();
                let h = thread::spawn(move || {
                    for i in 0..4 { tx.send(i * 10); }
                });
                let mut total = 0;
                for i in 0..4 { total += rx.recv().unwrap(); }
                h.join();
                println!("{}", total);
            }""")
        assert r.stdout == ["60"]

    def test_recv_after_senders_dropped_errors(self):
        r = interp("""
            fn main() {
                let (tx, rx) = channel();
                drop(tx);
                match rx.recv() {
                    Ok(v) => println!("got {}", v),
                    Err(e) => println!("closed"),
                };
            }""")
        assert r.ok and r.stdout == ["closed"]

    def test_bounded_channel_blocks_until_recv(self):
        r = interp("""
            fn main() {
                let (tx, rx) = sync_channel(1);
                let h = thread::spawn(move || {
                    tx.send(1);
                    tx.send(2);
                    tx.send(3);
                });
                let mut total = 0;
                for i in 0..3 { total += rx.recv().unwrap(); }
                h.join();
                println!("{}", total);
            }""")
        assert r.stdout == ["6"]

    def test_thread_panic_poisons_mutex(self):
        r = interp("""
            fn main() {
                let data = Arc::new(Mutex::new(0));
                let d2 = Arc::clone(&data);
                let h = thread::spawn(move || {
                    let g = d2.lock().unwrap();
                    panic!("dying with the lock");
                });
                h.join();
                match data.lock() {
                    Ok(g) => println!("ok"),
                    Err(e) => println!("poisoned"),
                };
            }""")
        assert r.ok and r.stdout == ["poisoned"]

    def test_once_runs_once(self):
        r = interp("""
            static INIT: Once = Once::new();
            fn main() {
                INIT.call_once(|| { println!("init"); });
                INIT.call_once(|| { println!("init"); });
                println!("done");
            }""")
        assert r.stdout == ["init", "done"]

    def test_once_recursion_deadlocks(self):
        r = interp("""
            static INIT: Once = Once::new();
            fn main() {
                INIT.call_once(|| {
                    INIT.call_once(|| { println!("inner"); });
                });
            }""")
        assert r.outcome == "deadlock"

    def test_atomics(self):
        r = interp("""
            fn main() {
                let flag = AtomicBool::new(false);
                let first = !flag.compare_and_swap(false, true);
                let second = !flag.compare_and_swap(false, true);
                println!("{} {}", first, second);
            }""")
        assert r.stdout == ["true false"]

    def test_race_detection(self):
        r = interp("""
            struct Shared { value: i32 }
            unsafe impl Sync for Shared {}
            impl Shared {
                fn set(&self, i: i32) {
                    let p = &self.value as *const i32 as *mut i32;
                    unsafe { *p = i; }
                }
            }
            fn main() {
                let s = Arc::new(Shared { value: 0 });
                let s2 = Arc::clone(&s);
                let h = thread::spawn(move || { s2.set(1); });
                s.set(2);
                h.join();
            }""", detect_races=True, quantum=2)
        assert r.races, "unsynchronised cross-thread writes must be flagged"

    def test_locked_writes_not_raced(self):
        r = interp("""
            fn main() {
                let m = Arc::new(Mutex::new(0));
                let m2 = Arc::clone(&m);
                let h = thread::spawn(move || {
                    let mut g = m2.lock().unwrap();
                    *g += 1;
                });
                let mut g = m.lock().unwrap();
                *g += 1;
                drop(g);
                h.join();
            }""", detect_races=True, quantum=2)
        assert not r.races


class TestSchedules:
    def test_deterministic_for_fixed_seed(self):
        src = """
            fn main() {
                let total = Arc::new(Mutex::new(0));
                let t2 = Arc::clone(&total);
                let h = thread::spawn(move || {
                    let mut g = t2.lock().unwrap();
                    *g += 1;
                });
                h.join();
                println!("{}", *total.lock().unwrap());
            }"""
        a = interp(src, seed=3)
        b = interp(src, seed=3)
        assert a.outcome == b.outcome and a.stdout == b.stdout

    def test_step_limit(self):
        r = interp("fn main() { loop { let x = 1; } }", max_steps=5000)
        assert r.outcome == "limit"


class TestRefCellAcrossThreads:
    """The paper's §6.2: four studied bugs are RefCell double-borrows
    across threads, caught by Rust's runtime checks — and by ours."""

    def test_cross_thread_borrow_mut_panics(self):
        r = interp("""
            struct Holder { cell: RefCell<i32> }
            unsafe impl Sync for Holder {}
            fn main() {
                let h = Arc::new(Holder { cell: RefCell::new(0) });
                let h2 = Arc::clone(&h);
                let t = thread::spawn(move || {
                    let mut a = h2.cell.borrow_mut();
                    *a += 1;
                    thread::yield_now();
                    *a += 1;
                });
                let mut b = h.cell.borrow_mut();
                *b += 10;
                drop(b);
                t.join();
            }""", quantum=1, seed=2)
        # With quantum 1 both threads interleave inside the borrows: one of
        # them must hit BorrowMutError (possibly the spawned one, making
        # join observe a panic) — or, under a lucky schedule, both succeed.
        assert r.outcome in ("ok", "panic")

    def test_same_thread_borrow_then_borrow_mut_panics(self):
        r = interp("""
            fn main() {
                let cell = RefCell::new(1);
                let shared = cell.borrow();
                let exclusive = cell.borrow_mut();
            }""")
        assert r.outcome == "panic"
        assert "Borrow" in str(r.error)

    def test_sequential_borrows_fine(self):
        r = interp("""
            fn main() {
                let cell = RefCell::new(1);
                {
                    let mut w = cell.borrow_mut();
                    *w = 5;
                }
                let r = cell.borrow();
                println!("{}", *r);
            }""")
        assert r.ok and r.stdout == ["5"]


class TestMemSwapReplace:
    def test_mem_replace(self):
        r = interp("""
            fn main() {
                let mut v = vec![1, 2];
                let old = mem::replace(&mut v, vec![9]);
                println!("{} {}", old.len(), v.len());
            }""")
        assert r.ok and r.stdout == ["2 1"]

    def test_mem_swap(self):
        r = interp("""
            fn main() {
                let mut a = 1;
                let mut b = 2;
                mem::swap(&mut a, &mut b);
                println!("{} {}", a, b);
            }""")
        assert r.ok and r.stdout == ["2 1"]


class TestLockRuntimeEdgeCases:
    """Regression tests for the code-review findings."""

    def test_reentrant_read_guards_counted(self):
        # Dropping one of two same-thread read guards must NOT release
        # the lock: a subsequent write acquisition still self-deadlocks.
        r = interp("""
            fn main() {
                let l = RwLock::new(1);
                let a = l.read().unwrap();
                let b = l.read().unwrap();
                drop(a);
                let w = l.write().unwrap();
            }""")
        assert r.outcome == "deadlock"

    def test_both_read_guards_dropped_allows_write(self):
        r = interp("""
            fn main() {
                let l = RwLock::new(1);
                let a = l.read().unwrap();
                let b = l.read().unwrap();
                drop(a);
                drop(b);
                let mut w = l.write().unwrap();
                *w = 2;
                println!("{}", *w);
            }""")
        assert r.ok and r.stdout == ["2"]

    def test_vecdeque_fifo(self):
        r = interp("""
            fn main() {
                let mut q = VecDeque::new();
                q.push_back(1);
                q.push_back(2);
                q.push_back(3);
                println!("{} {}", q.pop_front().unwrap(),
                         q.pop_back().unwrap());
            }""")
        assert r.ok and r.stdout == ["1 3"]

    def test_blocking_static_initializer_reports(self):
        from repro.driver import compile_source
        from repro.mir.interp import run_program
        src = """
        static BAD: Mutex<i32> = Mutex::new(helper());
        fn helper() -> i32 {
            let (tx, rx) = channel();
            drop(tx);
            loop { let x = 1; }
        }
        fn main() {}
        """
        from repro.mir.interp import ScheduleConfig
        result = run_program(compile_source(src).program,
                             schedule=ScheduleConfig(max_steps=5000))
        # Must terminate with an error, not hang.
        assert result.outcome in ("ub", "panic", "deadlock", "limit")


class TestLanguageEdges:
    def test_shadowing(self):
        r = interp("""
            fn main() {
                let x = 1;
                let x = x + 1;
                let x = x * 10;
                println!("{}", x);
            }""")
        assert r.ok and r.stdout == ["20"]

    def test_nested_enum_match(self):
        r = interp("""
            fn main() {
                let v: Option<Option<i32>> = Some(Some(5));
                let out = match v {
                    Some(Some(n)) => n,
                    Some(None) => -1,
                    None => -2,
                };
                println!("{}", out);
            }""")
        assert r.ok and r.stdout == ["5"]

    def test_tuple_destructuring_and_index(self):
        r = interp("""
            fn main() {
                let pair = (3, 4);
                let (a, b) = pair;
                println!("{} {} {}", a, b, pair.0 + pair.1);
            }""")
        assert r.ok and r.stdout == ["3 4 7"]

    def test_block_expression_value(self):
        r = interp("""
            fn main() {
                let x = {
                    let a = 2;
                    let b = 3;
                    a * b
                };
                println!("{}", x);
            }""")
        assert r.ok and r.stdout == ["6"]

    def test_early_return_in_nested_scope(self):
        r = interp("""
            fn pick(flag: bool) -> i32 {
                let v = vec![1, 2, 3];
                if flag {
                    return v.len();
                }
                0
            }
            fn main() {
                println!("{} {}", pick(true), pick(false));
            }""")
        assert r.ok and r.stdout == ["3 0"]

    def test_send_on_full_bounded_channel_deadlocks_without_receiver(self):
        # The paper's §6.1: "one bug ... caused by a thread being blocked
        # when sending to a full channel".  Dynamic-only: the static
        # channel detector does not model buffer capacities.
        r = interp("""
            fn main() {
                let (tx, rx) = sync_channel(1);
                tx.send(1);
                tx.send(2);
            }""")
        assert r.outcome == "deadlock"


class TestMutableStatics:
    """Table 4's "Global" sharing class: mutable statics accessed in
    unsafe code, shared across functions (and threads)."""

    def test_static_mut_shared_across_functions(self):
        r = interp("""
            static mut COUNTER: i32 = 0;
            fn bump() {
                unsafe { COUNTER += 1; }
            }
            fn main() {
                bump();
                bump();
                unsafe { println!("{}", COUNTER); }
            }""")
        assert r.ok and r.stdout == ["2"]

    def test_static_mut_shared_across_threads(self):
        r = interp("""
            static mut FLAG: i32 = 0;
            fn main() {
                let h = thread::spawn(move || {
                    unsafe { FLAG = 7; }
                });
                h.join();
                unsafe { println!("{}", FLAG); }
            }""")
        assert r.ok and r.stdout == ["7"]

    def test_static_mutex_shared_across_threads(self):
        r = interp("""
            static TOTAL: Mutex<i32> = Mutex::new(0);
            fn main() {
                let h = thread::spawn(move || {
                    let mut g = TOTAL.lock().unwrap();
                    *g += 2;
                });
                h.join();
                println!("{}", *TOTAL.lock().unwrap());
            }""")
        assert r.ok and r.stdout == ["2"]
