"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.driver import compile_source
from repro.detectors.registry import run_detectors
from repro.mir.interp import ScheduleConfig, run_program


def compile_(src: str):
    """Compile MiniRust source, returning the CompiledProgram."""
    return compile_source(src)


def mir_of(src: str, fn: str = "main"):
    compiled = compile_source(src)
    body = compiled.program.body(fn)
    assert body is not None, f"no function {fn!r}; have " \
        f"{sorted(compiled.program.functions)}"
    return body


def check(src: str, detectors=None):
    """Compile and run detectors, returning the Report."""
    compiled = compile_source(src)
    return run_detectors(compiled.program, detectors=detectors,
                         source=compiled.source)


def interp(src: str, entry: str = "main", seed: int = 0,
           quantum: int = 10, max_steps: int = 400_000,
           detect_races: bool = False):
    """Compile and interpret, returning the RunResult."""
    compiled = compile_source(src)
    config = ScheduleConfig(seed=seed, quantum=quantum, max_steps=max_steps)
    return run_program(compiled.program, entry=entry, schedule=config,
                       detect_races=detect_races)


def detectors_named(report, name: str):
    return [f for f in report.findings if f.detector == name]


@pytest.fixture
def compile_src():
    return compile_
