"""Driver and CLI tests."""

import pytest

from repro import compile_source, run_all_detectors
from repro.cli import main as cli_main
from repro.detectors.use_after_free import UseAfterFreeDetector
from repro.driver import CompiledProgram, compile_file, run_detectors


UAF_SRC = """
fn main() {
    let v = vec![1, 2, 3];
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
"""

CLEAN_SRC = """
fn main() {
    let v = vec![1, 2, 3];
    println!("{}", v.len());
}
"""


class TestDriver:
    def test_compile_source_returns_compiled_program(self):
        compiled = compile_source(CLEAN_SRC)
        assert isinstance(compiled, CompiledProgram)
        assert "main" in compiled.functions
        assert compiled.item_table is not None

    def test_run_all_detectors_on_buggy(self):
        report = run_all_detectors(compile_source(UAF_SRC))
        assert report.by_detector("use-after-free")

    def test_run_all_detectors_on_clean(self):
        report = run_all_detectors(compile_source(CLEAN_SRC))
        assert not report.errors

    def test_run_selected_detectors(self):
        report = run_detectors(compile_source(UAF_SRC),
                               [UseAfterFreeDetector()])
        assert {f.detector for f in report.findings} <= {"use-after-free"}

    def test_compile_file(self, tmp_path):
        path = tmp_path / "prog.rs"
        path.write_text(CLEAN_SRC)
        compiled = compile_file(str(path))
        assert "main" in compiled.functions


class TestCli:
    def _write(self, tmp_path, text):
        path = tmp_path / "prog.rs"
        path.write_text(text)
        return str(path)

    def test_check_buggy_exits_nonzero(self, tmp_path, capsys):
        code = cli_main(["check", self._write(tmp_path, UAF_SRC)])
        out = capsys.readouterr().out
        assert code == 1
        assert "use-after-free" in out

    def test_check_clean_exits_zero(self, tmp_path, capsys):
        code = cli_main(["check", self._write(tmp_path, CLEAN_SRC)])
        assert code == 0

    def test_check_single_detector(self, tmp_path, capsys):
        code = cli_main(["check", self._write(tmp_path, UAF_SRC),
                         "--detector", "use-after-free"])
        assert code == 1

    def test_check_unknown_detector(self, tmp_path, capsys):
        code = cli_main(["check", self._write(tmp_path, CLEAN_SRC),
                         "--detector", "nonsense"])
        assert code == 2

    def test_run_clean(self, tmp_path, capsys):
        code = cli_main(["run", self._write(tmp_path, CLEAN_SRC)])
        out = capsys.readouterr().out
        assert code == 0
        assert "3" in out and "outcome: ok" in out

    def test_run_ub(self, tmp_path, capsys):
        code = cli_main(["run", self._write(tmp_path, UAF_SRC)])
        out = capsys.readouterr().out
        assert code == 1
        assert "use-after-free" in out

    def test_mir_dump(self, tmp_path, capsys):
        code = cli_main(["mir", self._write(tmp_path, CLEAN_SRC),
                         "--fn", "main"])
        out = capsys.readouterr().out
        assert code == 0
        assert "StorageLive" in out and "bb0" in out

    def test_scan(self, tmp_path, capsys):
        code = cli_main(["scan", self._write(tmp_path, UAF_SRC)])
        out = capsys.readouterr().out
        assert code == 0
        assert "unsafe blocks" in out

    def test_tables(self, capsys):
        code = cli_main(["tables", "--table", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Servo" in out and "14574" in out

    def test_tables_all(self, capsys):
        code = cli_main(["tables"])
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out and "Table 4" in out

    def test_corpus(self, capsys):
        code = cli_main(["corpus", "--scale", "1", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "double-lock" in out and "use-after-free" in out


class TestCliExtensions:
    def _write(self, tmp_path, text):
        path = tmp_path / "prog.rs"
        path.write_text(text)
        return str(path)

    def test_check_with_advice(self, tmp_path, capsys):
        cli_main(["check", self._write(tmp_path, UAF_SRC), "--advice"])
        out = capsys.readouterr().out
        assert "suggested fixes" in out
        assert "adjust lifetime" in out

    def test_annotate(self, tmp_path, capsys):
        src = """
        fn f(m: &Mutex<i32>) {
            let g = m.lock().unwrap();
            print(*g);
        }
        """
        code = cli_main(["annotate", self._write(tmp_path, src),
                         "--fn", "f"])
        out = capsys.readouterr().out
        assert code == 0
        assert "storage lines" in out
        assert "critical section" in out

    def test_annotate_unknown_fn(self, tmp_path):
        code = cli_main(["annotate", self._write(tmp_path, CLEAN_SRC),
                         "--fn", "nope"])
        assert code == 2


class TestCliObservability:
    """The obs-layer CLI surface: --json, --profile, explain, stats."""

    def _write(self, tmp_path, text):
        path = tmp_path / "prog.rs"
        path.write_text(text)
        return str(path)

    def test_check_json_buggy(self, tmp_path, capsys):
        import json
        code = cli_main(["check", self._write(tmp_path, UAF_SRC), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["counts"]["use-after-free"] >= 1
        finding = data["findings"][0]
        assert finding["provenance"], "JSON report must embed provenance"
        assert finding["location"]["line"] >= 1

    def test_check_json_clean(self, tmp_path, capsys):
        import json
        code = cli_main(["check", self._write(tmp_path, CLEAN_SRC),
                         "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["findings"] == []

    def test_check_json_with_profile_embeds_trace(self, tmp_path, capsys):
        import json
        code = cli_main(["check", self._write(tmp_path, CLEAN_SRC),
                         "--json", "--profile"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        span_names = [s["name"] for s in data["profile"]["spans"]]
        assert "compile" in span_names and "detectors" in span_names

    def test_check_profile_prints_tree(self, tmp_path, capsys):
        code = cli_main(["check", self._write(tmp_path, UAF_SRC),
                         "--profile"])
        out = capsys.readouterr().out
        assert code == 1
        assert "== trace" in out
        for phase in ("lex", "parse", "mir-lower",
                      "detector.use-after-free", "detector.double-lock"):
            assert phase in out
        assert "analysis.points_to.miss" in out
        # The collector is torn down after the command.
        from repro import obs
        assert obs.get_collector() is None

    def test_explain_buggy(self, tmp_path, capsys):
        code = cli_main(["explain", self._write(tmp_path, UAF_SRC)])
        out = capsys.readouterr().out
        assert code == 1
        assert "because:" in out and "[points-to]" in out

    def test_explain_clean(self, tmp_path, capsys):
        code = cli_main(["explain", self._write(tmp_path, CLEAN_SRC)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no findings" in out

    def test_explain_unknown_detector_is_usage_error(self, tmp_path):
        code = cli_main(["explain", self._write(tmp_path, CLEAN_SRC),
                         "--detector", "nonsense"])
        assert code == 2

    def test_stats_text(self, tmp_path, capsys):
        code = cli_main(["stats", self._write(tmp_path, UAF_SRC)])
        out = capsys.readouterr().out
        assert code == 0
        assert "== trace" in out and "findings: " in out

    def test_stats_json_with_run(self, tmp_path, capsys):
        import json
        code = cli_main(["stats", self._write(tmp_path, CLEAN_SRC),
                         "--json", "--run"])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "interp.run" in data["phases"]
        assert data["counters"]["interp.steps"] > 0
        assert data["report"]["findings"] == []

    def test_compile_error_is_usage_error(self, tmp_path, capsys):
        code = cli_main(["check", self._write(tmp_path, "fn main( {")])
        assert code == 2

    def test_run_profile(self, tmp_path, capsys):
        code = cli_main(["run", self._write(tmp_path, CLEAN_SRC),
                         "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "interp.steps" in out and "interp.run" in out


class TestDriverBoundsBuildMode:
    def test_unchecked_build_has_no_asserts(self):
        from repro.driver import compile_source
        from repro.mir.nodes import TerminatorKind
        src = "fn main() { let v = vec![1, 2]; let x = v[1]; print(x); }"
        checked = compile_source(src)
        unchecked = compile_source(src, emit_bounds_checks=False)

        def asserts(compiled):
            return sum(1 for _bb, t in
                       compiled.program.functions["main"].iter_terminators()
                       if t.kind is TerminatorKind.ASSERT)

        assert asserts(checked) > 0
        assert asserts(unchecked) == 0

    def test_unchecked_build_still_runs(self):
        from repro.driver import compile_source
        from repro.mir.interp import run_program
        src = "fn main() { let v = vec![7, 8]; println!(\"{}\", v[1]); }"
        result = run_program(
            compile_source(src, emit_bounds_checks=False).program)
        assert result.ok and result.stdout == ["8"]
