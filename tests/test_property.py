"""Property-based tests (hypothesis) on core invariants."""

import string

from hypothesis import given, settings, strategies as st

from conftest import interp

from repro.lang.lexer import tokenize
from repro.lang.parser import parse_source
from repro.lang.source import SourceFile, Span
from repro.lang.diagnostics import CompileError
from repro.mir.build import build_program
from repro.mir.cfg import Cfg
from repro.mir.nodes import StatementKind


# ---------------------------------------------------------------------------
# Lexer properties
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s not in {
        "as", "break", "const", "continue", "crate", "dyn", "else", "enum",
        "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop",
        "match", "mod", "move", "mut", "pub", "ref", "return", "self",
        "static", "struct", "super", "trait", "true", "type", "unsafe",
        "use", "where", "while", "_",
    })


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_int_literal_roundtrip(n):
    tokens = tokenize(str(n))
    assert tokens[0].value == n


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_hex_literal_roundtrip(n):
    tokens = tokenize(hex(n))
    assert tokens[0].value == n


@given(st.text(alphabet=string.ascii_letters + string.digits + " _.,!?",
               max_size=40))
def test_string_literal_roundtrip(s):
    tokens = tokenize('"' + s + '"')
    assert tokens[0].value == s


@given(identifiers)
def test_identifier_roundtrip(name):
    tokens = tokenize(name)
    assert tokens[0].text == name


@given(st.lists(st.sampled_from(["+", "-", "*", "/", "==", "<", ">>", "&&",
                                 "(", ")", "{", "}", "let", "x", "1"]),
                max_size=30))
def test_lexer_never_crashes_on_token_soup(parts):
    try:
        tokenize(" ".join(parts))
    except CompileError:
        pass   # rejection is fine; crashing is not


@given(st.text(max_size=60))
@settings(max_examples=200)
def test_lexer_terminates_on_arbitrary_input(text):
    try:
        tokens = tokenize(text)
        # Spans are within bounds and non-decreasing.
        last = 0
        for token in tokens[:-1]:
            assert 0 <= token.span.lo <= token.span.hi <= len(text)
            assert token.span.lo >= last
            last = token.span.lo
    except CompileError:
        pass


# ---------------------------------------------------------------------------
# Parser / MIR properties on generated programs
# ---------------------------------------------------------------------------

@st.composite
def arith_expr(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return str(draw(st.integers(min_value=0, max_value=100)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arith_expr(depth=depth + 1))
    right = draw(arith_expr(depth=depth + 1))
    return f"({left} {op} {right})"


@given(arith_expr())
@settings(max_examples=60)
def test_interpreter_matches_python_arithmetic(expr):
    result = interp(f'fn main() {{ println!("{{}}", {expr}); }}')
    assert result.ok
    assert result.stdout == [str(eval(expr))]


@st.composite
def small_program(draw):
    n_vars = draw(st.integers(min_value=1, max_value=4))
    lines = []
    names = []
    for i in range(n_vars):
        name = f"v{i}"
        value = draw(st.integers(min_value=0, max_value=50))
        if names and draw(st.booleans()):
            src = draw(st.sampled_from(names))
            lines.append(f"let {name} = {src} + {value};")
        else:
            lines.append(f"let {name} = {value};")
        names.append(name)
    lines.append(f'println!("{{}}", {names[-1]});')
    return "fn main() { " + " ".join(lines) + " }"


@given(small_program())
@settings(max_examples=60)
def test_generated_programs_compile_and_run(src):
    crate = parse_source(src)
    program = build_program(crate)
    body = program.functions["main"]
    # Structural invariants.
    for block in body.blocks:
        assert block.terminator is not None
    live, dead = set(), set()
    for _bb, _i, stmt in body.iter_statements():
        if stmt.kind is StatementKind.STORAGE_LIVE:
            live.add(stmt.local)
        elif stmt.kind is StatementKind.STORAGE_DEAD:
            dead.add(stmt.local)
    assert dead <= live | {0}
    result = interp(src)
    assert result.ok


@given(small_program())
@settings(max_examples=30)
def test_cfg_invariants(src):
    program = build_program(parse_source(src))
    body = program.functions["main"]
    cfg = Cfg(body)
    rpo = cfg.reverse_post_order()
    assert len(rpo) == len(set(rpo))
    for bb in rpo:
        assert cfg.dominates(0, bb)
        for succ in cfg.successors[bb]:
            assert bb in cfg.predecessors[succ]


# ---------------------------------------------------------------------------
# Span properties
# ---------------------------------------------------------------------------

@given(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000),
       st.integers(0, 1000))
def test_span_merge_covers_both(a, b, c, d):
    s1 = Span(min(a, b), max(a, b))
    s2 = Span(min(c, d), max(c, d))
    merged = s1.merge(s2)
    assert merged.lo <= s1.lo and merged.lo <= s2.lo
    assert merged.hi >= s1.hi and merged.hi >= s2.hi


@given(st.text(alphabet=string.printable, max_size=200), st.integers(0, 220))
def test_line_col_in_bounds(text, offset):
    source = SourceFile("t", text)
    line, col = source.line_col(offset)
    assert line >= 1 and col >= 1
    assert line <= text.count("\n") + 1


# ---------------------------------------------------------------------------
# Interpreter determinism
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=7),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_scheduler_deterministic(seed, quantum):
    src = """
        fn main() {
            let total = Arc::new(Mutex::new(0));
            let t2 = Arc::clone(&total);
            let h = thread::spawn(move || {
                for i in 0..5 {
                    let mut g = t2.lock().unwrap();
                    *g += 1;
                }
            });
            for i in 0..5 {
                let mut g = total.lock().unwrap();
                *g += 1;
            }
            h.join();
            println!("{}", *total.lock().unwrap());
        }"""
    a = interp(src, seed=seed, quantum=quantum)
    b = interp(src, seed=seed, quantum=quantum)
    assert a.outcome == b.outcome == "ok"
    assert a.stdout == b.stdout == ["10"]
    assert a.steps == b.steps


# ---------------------------------------------------------------------------
# Detector false-positive freedom on benign generated code
# ---------------------------------------------------------------------------

from repro.corpus.benign import BENIGN_TEMPLATES
from repro.detectors.registry import run_detectors


@given(st.lists(st.sampled_from(sorted(BENIGN_TEMPLATES)), min_size=1,
                max_size=4, unique=True),
       st.integers(min_value=0, max_value=999))
@settings(max_examples=40, deadline=None)
def test_detectors_fp_free_on_benign_templates(names, salt):
    """Soundness-of-silence: arbitrary combinations of the benign corpus
    templates must never produce ERROR-severity findings."""
    source = "\n".join(BENIGN_TEMPLATES[name](f"pb{salt}x{i}")
                       for i, name in enumerate(names))
    program = build_program(parse_source(source))
    report = run_detectors(program)
    errors = [f for f in report.findings if f.severity.value == "error"]
    assert not errors, [f.message for f in errors]


@given(st.integers(min_value=0, max_value=50),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_vec_push_pop_roundtrip(base, count):
    """Interpreter Vec semantics: push N then pop N returns the values in
    LIFO order and leaves the vector empty."""
    pushes = " ".join(f"v.push({base} + {i});" for i in range(count))
    pops = " ".join(
        f'println!("{{}}", v.pop().unwrap());' for _ in range(count))
    result = interp(f"fn main() {{ let mut v = Vec::new(); {pushes} {pops} "
                    f'println!("{{}}", v.len()); }}')
    assert result.ok
    expected = [str(base + i) for i in reversed(range(count))] + ["0"]
    assert result.stdout == expected


@st.composite
def option_match_program(draw):
    """A random Option<i32> value matched through guards and literals."""
    is_some = draw(st.booleans())
    payload = draw(st.integers(min_value=-20, max_value=20))
    pivot = draw(st.integers(min_value=-20, max_value=20))
    value_src = f"Some({payload})" if is_some else "None"
    src = f"""
        fn main() {{
            let v: Option<i32> = {value_src};
            let out = match v {{
                Some(n) if n > {pivot} => n * 2,
                Some(0) => 100,
                Some(n) => n - 1,
                None => -99,
            }};
            println!("{{}}", out);
        }}"""
    if not is_some:
        expected = -99
    elif payload > pivot:
        expected = payload * 2
    elif payload == 0:
        expected = 100
    else:
        expected = payload - 1
    return src, expected


@given(option_match_program())
@settings(max_examples=50, deadline=None)
def test_match_semantics_against_oracle(case):
    src, expected = case
    result = interp(src)
    assert result.ok, result.error
    assert result.stdout == [str(expected)]
