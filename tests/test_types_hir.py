"""Semantic type system and HIR item-table tests."""

from conftest import compile_

from repro.hir.builtins import BuiltinOp, resolve_builtin_call, resolve_method
from repro.hir.table import build_item_table
from repro.lang.parser import parse_source
from repro.lang.types import (
    BOOL, I32, UNKNOWN, Ty, TyKind,
)


class TestTy:
    def test_copy_semantics(self):
        assert I32.is_copy
        assert BOOL.is_copy
        assert Ty.ref(I32).is_copy                    # &T is Copy
        assert not Ty.ref(I32, mutable=True).is_copy  # &mut T is not
        assert Ty.raw_ptr(I32).is_copy
        assert not Ty.builtin("Vec", (I32,)).is_copy
        assert not Ty.string().is_copy
        assert Ty.tuple_((I32, BOOL)).is_copy
        assert not Ty.tuple_((I32, Ty.string())).is_copy

    def test_needs_drop(self):
        assert Ty.builtin("Vec", (I32,)).needs_drop
        assert Ty.builtin("Box", (I32,)).needs_drop
        assert Ty.builtin("MutexGuard", (I32,)).needs_drop
        assert not I32.needs_drop
        assert not Ty.raw_ptr(I32).needs_drop

    def test_guard_detection(self):
        assert Ty.builtin("MutexGuard", (I32,)).is_guard
        assert Ty.builtin("RwLockReadGuard", (I32,)).is_guard
        assert not Ty.builtin("Vec", (I32,)).is_guard

    def test_lock_detection(self):
        assert Ty.builtin("Mutex", (I32,)).is_lock
        assert Ty.builtin("RwLock", (I32,)).is_lock
        assert not Ty.builtin("RefCell", (I32,)).is_lock

    def test_peel_refs(self):
        ty = Ty.ref(Ty.ref(I32))
        assert ty.peel_refs() == I32

    def test_peel_wrappers(self):
        ty = Ty.builtin("Arc", (Ty.builtin("Mutex", (I32,)),))
        assert ty.peel_wrappers().name == "Mutex"

    def test_interior_mutability(self):
        assert Ty.builtin("RefCell", (I32,)).is_interior_mutable
        assert Ty.builtin("AtomicBool").is_interior_mutable
        assert not Ty.builtin("Vec", (I32,)).is_interior_mutable

    def test_str_rendering(self):
        assert str(Ty.ref(I32, True)) == "&mut i32"
        assert str(Ty.raw_ptr(I32)) == "*const i32"
        assert str(Ty.builtin("Vec", (I32,))) == "Vec<i32>"


class TestBuiltinResolution:
    def test_path_call_suffix_match(self):
        ref, ty = resolve_builtin_call("std::sync::Mutex::new", [], [I32])
        assert ref.builtin_op is BuiltinOp.MUTEX_NEW
        assert ty.name == "Mutex"

    def test_unknown_path(self):
        assert resolve_builtin_call("made::up::fn", [], []) is None

    def test_lock_method(self):
        mutex = Ty.builtin("Mutex", (I32,))
        ref, ty = resolve_method(mutex, "lock", [])
        assert ref.builtin_op is BuiltinOp.MUTEX_LOCK
        assert ty.name == "Result"
        assert ty.arg(0).name == "MutexGuard"

    def test_rwlock_read_write(self):
        lock = Ty.builtin("RwLock", (I32,))
        read_ref, read_ty = resolve_method(lock, "read", [])
        write_ref, write_ty = resolve_method(lock, "write", [])
        assert read_ty.arg(0).name == "RwLockReadGuard"
        assert write_ty.arg(0).name == "RwLockWriteGuard"

    def test_get_unchecked_is_unsafe(self):
        vec = Ty.builtin("Vec", (I32,))
        ref, _ty = resolve_method(vec, "get_unchecked", [I32])
        assert ref.is_unsafe

    def test_vec_get_returns_option_ref(self):
        vec = Ty.builtin("Vec", (I32,))
        _ref, ty = resolve_method(vec, "get", [I32])
        assert ty.name == "Option"
        assert ty.arg(0).is_ref

    def test_unknown_method_none(self):
        assert resolve_method(I32, "frobnicate", []) is None


class TestItemTable:
    def test_struct_fields_lowered(self):
        table = build_item_table(parse_source(
            "struct P { x: i32, v: Vec<u8> }"))
        info = table.structs["P"]
        assert info.field_ty("x").kind is TyKind.INT
        assert info.field_ty("v").name == "Vec"
        assert info.field_index("v") == 1

    def test_method_keys(self):
        table = build_item_table(parse_source("""
            struct S;
            impl S {
                fn a(&self) {}
                fn b(&mut self) {}
                fn c(self) {}
                fn d() {}
            }"""))
        assert table.lookup_method("S", "a").self_mode == "ref"
        assert table.lookup_method("S", "b").self_mode == "ref_mut"
        assert table.lookup_method("S", "c").self_mode == "value"
        assert table.lookup_method("S", "d").self_mode is None

    def test_unsafe_sync_recorded(self):
        table = build_item_table(parse_source("""
            struct S;
            unsafe impl Sync for S {}"""))
        assert table.structs["S"].unsafe_sync
        assert ("Sync", "S") in table.unsafe_impls

    def test_enum_variants(self):
        table = build_item_table(parse_source(
            "enum E { A, B(i32, bool), C }"))
        info = table.enums["E"]
        assert info.variant_index("B") == 1
        assert len(info.variant_payload("B")) == 2

    def test_statics(self):
        table = build_item_table(parse_source(
            "static mut COUNTER: i32 = 0;"))
        assert table.statics["COUNTER"].mutable

    def test_self_type_resolution(self):
        table = build_item_table(parse_source("""
            struct S { v: i32 }
            impl S {
                fn make() -> Self { S { v: 0 } }
            }"""))
        fn = table.lookup_method("S", "make")
        assert fn.ret_ty.name == "S"

    def test_generics_become_params(self):
        table = build_item_table(parse_source("""
            struct Holder<T> { value: T }"""))
        assert table.structs["Holder"].field_ty("value").kind is \
            TyKind.TYPE_PARAM


class TestBorrowck:
    def test_use_after_move_detected(self):
        from repro.analysis.borrowck import check_program
        compiled = compile_("""
            fn main() {
                let v: Vec<i32> = Vec::new();
                let w = v;
                let n = v.len();
            }""")
        errors = check_program(compiled.program)
        assert any(e.kind == "use_after_move" for e in errors)

    def test_clean_program_passes(self):
        from repro.analysis.borrowck import check_program
        compiled = compile_("""
            fn main() {
                let v: Vec<i32> = Vec::new();
                let n = v.len();
                let w = v;
            }""")
        errors = check_program(compiled.program)
        assert not [e for e in errors if e.kind == "use_after_move"]

    def test_conflicting_mutable_borrows(self):
        from repro.analysis.borrowck import check_program
        compiled = compile_("""
            fn main() {
                let mut x = 1;
                let r1 = &mut x;
                let r2 = &mut x;
                print(*r1 + *r2);
            }""")
        errors = check_program(compiled.program)
        assert any(e.kind == "conflicting_borrow" for e in errors)

    def test_two_shared_borrows_fine(self):
        from repro.analysis.borrowck import check_program
        compiled = compile_("""
            fn main() {
                let x = 1;
                let r1 = &x;
                let r2 = &x;
                print(*r1 + *r2);
            }""")
        errors = check_program(compiled.program)
        assert not [e for e in errors if e.kind == "conflicting_borrow"]
