"""Tests for the parallel + incremental executor: wave scheduling,
jobs-count determinism, and the content-addressed summary cache."""

import json
import os

import pytest

from conftest import compile_

from repro import obs
from repro.analysis.callgraph import (
    build_call_graph, component_callees, scc_order, wave_partition,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import SummaryEngine
from repro.analysis.executor import (
    LEGACY_CACHE_FORMAT, SummaryCache, body_fingerprint,
)
from repro.analysis.summaries import canonical, summary_fingerprint
from repro.api import AnalysisSession, analyze
from repro.corpus.inject import BUG_TEMPLATES


CHAIN_SRC = """
fn leaf(p: *const i32) -> *const i32 { p }
fn mid(p: *const i32) -> *const i32 { leaf(p) }
fn top(p: *const i32) -> *const i32 { mid(p) }
fn main() { let x = 0; let p = top(&x as *const i32); unsafe { print(*p); } }
"""


def graph_of(src: str):
    program = compile_(src).program
    return program, build_call_graph(program)


class TestWavePartition:
    def test_chain_gets_one_wave_per_level(self):
        program, graph = graph_of(CHAIN_SRC)
        components = scc_order(program, graph)
        waves = wave_partition(components, graph, program)
        # leaf < mid < top < main must land in strictly increasing waves.
        level = {}
        for wave_index, wave in enumerate(waves):
            for scc_id in wave:
                for key in components[scc_id]:
                    level[key] = wave_index
        assert level["leaf"] < level["mid"] < level["top"] < level["main"]

    def test_waves_have_no_internal_edges(self):
        corpus_src = "\n".join(
            BUG_TEMPLATES[name].render(f"w{i}")
            for i, name in enumerate(sorted(BUG_TEMPLATES)))
        program, graph = graph_of(corpus_src)
        components = scc_order(program, graph)
        waves = wave_partition(components, graph, program)
        scc_of = {key: i for i, comp in enumerate(components)
                  for key in comp}
        for wave in waves:
            wave_sccs = set(wave)
            for scc_id in wave:
                for key in components[scc_id]:
                    for callee in graph.edges.get(key, ()):
                        callee_scc = scc_of.get(callee)
                        if callee_scc is not None and callee_scc != scc_id:
                            assert callee_scc not in wave_sccs, \
                                f"{key} -> {callee} within one wave"

    def test_waves_cover_every_component_once(self):
        program, graph = graph_of(CHAIN_SRC)
        components = scc_order(program, graph)
        waves = wave_partition(components, graph, program)
        flat = [scc_id for wave in waves for scc_id in wave]
        assert sorted(flat) == list(range(len(components)))


# The determinism corpus: every race and UAF template in one program.
_JOB_TEMPLATES = sorted(
    name for name in BUG_TEMPLATES
    if name.startswith(("race_", "uaf_")))
JOBS_SRC = "\n".join(BUG_TEMPLATES[name].render(f"j{i}")
                     for i, name in enumerate(_JOB_TEMPLATES))


class TestJobsDeterminism:
    def test_findings_identical_across_jobs(self):
        payloads = []
        for jobs in (1, 2, 4):
            report = analyze(JOBS_SRC, name="jobs.rs",
                             config=AnalysisConfig(jobs=jobs))
            payloads.append(json.dumps(report.to_dict(), sort_keys=False))
        assert payloads[0] == payloads[1] == payloads[2]
        assert "race" in payloads[0] and "use-after-free" in payloads[0]

    def test_session_fanout_preserves_input_order(self):
        sources = [(f"m{i}.rs", BUG_TEMPLATES[name].render(f"s{i}"))
                   for i, name in enumerate(_JOB_TEMPLATES)]
        with AnalysisSession(AnalysisConfig(jobs=4)) as session:
            parallel = session.analyze_sources(sources)
        with AnalysisSession(AnalysisConfig(jobs=1)) as session:
            serial = session.analyze_sources(sources)
        assert [r.name for r in parallel] == [name for name, _ in sources]
        assert [json.dumps(r.to_dict()) for r in parallel] == \
               [json.dumps(r.to_dict()) for r in serial]


class TestFingerprints:
    def test_canonical_is_order_insensitive(self):
        assert canonical(frozenset({"b", "a"})) == \
            canonical(frozenset({"a", "b"}))
        assert canonical({"y": 1, "x": 2}) == canonical({"x": 2, "y": 1})

    def test_equal_summaries_fingerprint_identically(self):
        program = compile_(CHAIN_SRC).program
        one = SummaryEngine(program)
        two = SummaryEngine(program)
        for key in program.functions:
            assert summary_fingerprint(one.summary(key)) == \
                summary_fingerprint(two.summary(key))

    def test_body_fingerprint_sees_span_moves(self):
        src = "fn f(p: *const i32) -> *const i32 { p }"
        a = compile_(src).program.functions["f"]
        b = compile_("\n\n" + src).program.functions["f"]
        assert body_fingerprint(a) != body_fingerprint(b)


EDIT_BASE = """
fn shared(p: *const i32) -> *const i32 { p }
fn user_a(p: *const i32) -> *const i32 { shared(p) }
fn user_b(p: *const i32) -> *const i32 { shared(p) }
fn main() {
    let x = 0;
    let p = user_a(&x as *const i32);
    let q = user_b(&x as *const i32);
    unsafe { print(*p + *q); }
}
fn tail() -> i32 { 1 }
"""
# Editing ``tail`` (the last function: earlier spans don't shift) must
# invalidate only its own component; with early cutoff, callers of an
# edited function whose *summary* didn't change also stay cached.
EDIT_TAIL = EDIT_BASE.replace("fn tail() -> i32 { 1 }",
                              "fn tail() -> i32 { 2 }")


def _shards(tmp_path):
    return sorted(tmp_path.glob("*.shard.pkl"))


def _explode_to_v2(tmp_path):
    """Rewrite a v3 shard cache as the legacy v2 per-entry layout:
    one ``<key>.summary.pkl`` per component, no shards, no index."""
    import pickle
    entries = {}
    for shard in _shards(tmp_path):
        payload = pickle.loads(shard.read_bytes())
        entries.update(payload["entries"])
        shard.unlink()
    index = tmp_path / SummaryCache.INDEX_NAME
    if index.exists():
        index.unlink()
    for ckey, entry in entries.items():
        (tmp_path / f"{ckey}.summary.pkl").write_bytes(pickle.dumps(
            {"format": LEGACY_CACHE_FORMAT,
             "summaries": entry["summaries"]},
            protocol=pickle.HIGHEST_PROTOCOL))
    return sorted(entries)


class TestSummaryCache:
    def test_cold_then_warm(self, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path))
        with obs.collecting() as cold:
            first = analyze(EDIT_BASE, name="edit.rs", config=config)
        assert cold.counters.get("analysis.cache.miss", 0) > 0
        assert cold.counters.get("analysis.cache.store", 0) == \
            cold.counters["analysis.cache.miss"]
        assert cold.counters.get("analysis.cache.hit", 0) == 0

        with obs.collecting() as warm:
            second = analyze(EDIT_BASE, name="edit.rs", config=config)
        assert warm.counters.get("analysis.cache.miss", 0) == 0
        assert warm.counters["analysis.cache.hit"] == \
            cold.counters["analysis.cache.miss"]
        assert warm.counters.get("analysis.executor.solved_functions",
                                 0) == 0
        assert warm.counters["analysis.executor.cached_functions"] > 0
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())

    def test_single_function_edit_resolves_only_its_scc(self, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path))
        analyze(EDIT_BASE, name="edit.rs", config=config)
        with obs.collecting() as warm:
            analyze(EDIT_TAIL, name="edit.rs", config=config)
        # Only ``tail`` was edited; its summary is unchanged, so early
        # cutoff keeps every other component (including main, which
        # calls nothing edited) a cache hit.
        assert warm.counters["analysis.cache.miss"] == 1
        assert warm.counters["analysis.executor.solved_functions"] == 1
        assert warm.counters["analysis.cache.hit"] >= 4

    def test_edit_propagates_when_summary_changes(self, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path))
        base = """
fn gives(p: *const i32) -> *const i32 { ptr::null() }
fn wraps(p: *const i32) -> *const i32 { gives(p) }
"""
        edited = base.replace("{ ptr::null() }", "{ p }")
        analyze(base, name="prop.rs", config=config)
        with obs.collecting() as warm:
            analyze(edited, name="prop.rs", config=config)
        # ``gives`` now returns its argument: its summary changed, so
        # ``wraps`` (keyed on callee summary fingerprints) must re-solve.
        assert warm.counters["analysis.cache.miss"] >= 2

    def test_cold_writes_one_shard_per_wave(self, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path))
        with obs.collecting() as cold:
            analyze(EDIT_BASE, name="edit.rs", config=config)
        shards = _shards(tmp_path)
        # EDIT_BASE condenses to three wave levels (leaves, users,
        # main): one shard each, not one file per component.
        assert len(shards) == 3
        assert len(shards) < cold.counters["analysis.cache.store"]
        assert (tmp_path / SummaryCache.INDEX_NAME).exists()
        # Warm serving costs one shard read per wave.
        with obs.collecting() as warm:
            analyze(EDIT_BASE, name="edit.rs", config=config)
        assert warm.counters["analysis.cache.shard_read"] == len(shards)

    def test_corrupted_shard_recomputes(self, tmp_path):
        # A shard truncated mid-read (or mid-write by a dying process)
        # must be dropped and recomputed, then heal for the next run.
        config = AnalysisConfig(cache_dir=str(tmp_path))
        first = analyze(EDIT_BASE, name="edit.rs", config=config)
        shards = _shards(tmp_path)
        assert shards
        original = shards[0].read_bytes()
        for shard in shards:
            shard.write_bytes(shard.read_bytes()[:25])   # torn entry
        with obs.collecting() as col:
            second = analyze(EDIT_BASE, name="edit.rs", config=config)
        assert col.counters["analysis.cache.corrupt"] == len(shards)
        assert col.counters.get("analysis.cache.hit", 0) == 0
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())
        # The recomputed shards serve warm again — the corruption left
        # no scar tissue.
        with obs.collecting() as healed:
            analyze(EDIT_BASE, name="edit.rs", config=config)
        assert healed.counters.get("analysis.cache.corrupt", 0) == 0
        assert healed.counters["analysis.cache.hit"] > 0
        assert len(_shards(tmp_path)[0].read_bytes()) >= len(original) // 2

    def test_wrong_payload_shape_recomputes(self, tmp_path):
        import pickle
        cache = SummaryCache(str(tmp_path), limit=64)
        path = cache._shard_path("deadbeef.shard.pkl")
        with open(path, "wb") as f:
            pickle.dump(["not", "a", "shard", "payload"], f)
        with obs.collecting() as col:
            assert cache.get("deadbeef") is None
        assert col.counters["analysis.cache.corrupt"] == 1
        assert not os.path.exists(path)

    def test_eviction_respects_limit(self, tmp_path):
        cache = SummaryCache(str(tmp_path), limit=2)
        program = compile_(CHAIN_SRC).program
        engine = SummaryEngine(program)
        entry = ({"leaf": engine.summary("leaf")},
                 {"leaf": summary_fingerprint(engine.summary("leaf"))})
        with obs.collecting() as col:
            for i in range(5):
                name = cache.put_wave({f"key{i}": entry})
                os.utime(cache._shard_path(name), (i, i))
        assert len(_shards(tmp_path)) == 2
        assert col.counters["analysis.cache.evict"] == 3
        # Evicted mappings are pruned: the survivors still hit, the
        # evicted keys miss cleanly.
        assert cache.get("key4") is not None
        assert cache.get("key0") is None

    def test_other_format_shard_is_stale(self, tmp_path):
        import pickle
        cache = SummaryCache(str(tmp_path), limit=64)
        path = cache._shard_path("cafe.shard.pkl")
        with open(path, "wb") as f:
            pickle.dump({"format": 999, "entries": {}}, f)
        with obs.collecting() as col:
            assert cache.get("cafe") is None
        assert col.counters["analysis.cache.stale"] == 1
        assert not os.path.exists(path)

    def test_no_cache_flag_disables_cache(self, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path), use_cache=False)
        with obs.collecting() as col:
            analyze(EDIT_BASE, name="edit.rs", config=config)
        assert "analysis.cache.miss" not in col.counters
        assert not list(tmp_path.iterdir())


class TestCacheMigration:
    """v2 → v3: the shard layout must *read* the old one-file-per-
    component entries transparently — a hit, a re-shard, and a retire,
    never a re-solve storm."""

    def test_v2_entries_migrate_without_resolve_storm(self, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path))
        with obs.collecting() as cold:
            first = analyze(EDIT_BASE, name="edit.rs", config=config)
        total = cold.counters["analysis.cache.miss"]
        legacy_keys = _explode_to_v2(tmp_path)
        assert len(legacy_keys) == total
        with obs.collecting() as warm:
            second = analyze(EDIT_BASE, name="edit.rs", config=config)
        # Every component was served from a v2 file: zero re-solves.
        assert warm.counters["analysis.cache.hit"] == total
        assert warm.counters["analysis.cache.migrated"] == total
        assert warm.counters.get("analysis.cache.miss", 0) == 0
        assert warm.counters.get(
            "analysis.executor.solved_functions", 0) == 0
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())
        # ... and transparently re-sharded: old files retired, shards
        # written, the next run reads shards only.
        assert not list(tmp_path.glob("*.summary.pkl"))
        assert _shards(tmp_path)
        with obs.collecting() as resharded:
            analyze(EDIT_BASE, name="edit.rs", config=config)
        assert resharded.counters.get("analysis.cache.migrated", 0) == 0
        assert resharded.counters["analysis.cache.hit"] == total

    def test_mixed_v2_v3_dir_identical_across_jobs(self, tmp_path):
        import pickle
        config = AnalysisConfig(cache_dir=str(tmp_path))
        baseline = analyze(JOBS_SRC, name="jobs.rs", config=config)
        # Demote one shard's entries to v2 files, keep the rest v3.
        shard = _shards(tmp_path)[0]
        payload = pickle.loads(shard.read_bytes())
        shard.unlink()
        for ckey, entry in payload["entries"].items():
            (tmp_path / f"{ckey}.summary.pkl").write_bytes(pickle.dumps(
                {"format": LEGACY_CACHE_FORMAT,
                 "summaries": entry["summaries"]},
                protocol=pickle.HIGHEST_PROTOCOL))
        payloads = []
        for jobs in (1, 2, 4):
            report = analyze(JOBS_SRC, name="jobs.rs",
                             config=config.with_(jobs=jobs))
            payloads.append(json.dumps(report.to_dict(), sort_keys=False))
        assert payloads[0] == payloads[1] == payloads[2]
        assert payloads[0] == json.dumps(baseline.to_dict(),
                                         sort_keys=False)

    def test_format1_bare_dict_is_stale_not_migrated(self, tmp_path):
        # Format-1 entries stored a bare {key: FunctionSummary} dict.
        # Serving one would hand out summaries missing newer fields, so
        # the migration reader treats it as stale — evicted and
        # recomputed, with the dedicated counter (not `corrupt`).
        import pickle
        config = AnalysisConfig(cache_dir=str(tmp_path))
        first = analyze(EDIT_BASE, name="edit.rs", config=config)
        for ckey in _explode_to_v2(tmp_path):
            path = tmp_path / f"{ckey}.summary.pkl"
            payload = pickle.loads(path.read_bytes())
            path.write_bytes(pickle.dumps(payload["summaries"]))
        files = sorted(tmp_path.glob("*.summary.pkl"))
        assert files
        with obs.collecting() as col:
            second = analyze(EDIT_BASE, name="edit.rs", config=config)
        assert col.counters["analysis.cache.stale"] == len(files)
        assert col.counters.get("analysis.cache.hit", 0) == 0
        assert col.counters.get("analysis.cache.corrupt", 0) == 0
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())

    def test_stale_and_corrupt_v2_mix_roundtrips(self, tmp_path):
        # Half the v2 entries garbage, half format-1-shaped: one warm
        # run heals the cache and reproduces identical findings.
        import pickle
        config = AnalysisConfig(cache_dir=str(tmp_path))
        first = analyze(EDIT_BASE, name="edit.rs", config=config)
        _explode_to_v2(tmp_path)
        entries = sorted(tmp_path.glob("*.summary.pkl"))
        assert len(entries) >= 2
        for i, entry in enumerate(entries):
            if i % 2 == 0:
                entry.write_bytes(b"\x00truncated garbage")
            else:
                payload = pickle.loads(entry.read_bytes())
                entry.write_bytes(pickle.dumps(payload["summaries"]))
        with obs.collecting() as col:
            second = analyze(EDIT_BASE, name="edit.rs", config=config)
        assert col.counters.get("analysis.cache.corrupt", 0) + \
            col.counters.get("analysis.cache.stale", 0) == len(entries)
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())


def _pool_available() -> bool:
    import warnings

    from repro.analysis.executor import create_pool
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        pool = create_pool(2)
    if pool is None:
        return False
    pool.shutdown(wait=True)
    return True


class TestObsFoldBack:
    """Cross-process observability: worker counters, histograms, and
    spans must fold back into the main collector — and degrade cleanly
    when the platform has no process pool at all."""

    def test_pool_unavailable_falls_back_in_process(self, monkeypatch):
        import repro.analysis.executor as executor_mod
        monkeypatch.setattr(executor_mod, "create_pool",
                            lambda jobs, **kwargs: None)
        with obs.collecting() as par:
            degraded = analyze(JOBS_SRC, name="jobs.rs",
                               config=AnalysisConfig(jobs=4))
        with obs.collecting() as ser:
            serial = analyze(JOBS_SRC, name="jobs.rs",
                             config=AnalysisConfig(jobs=1))
        assert json.dumps(degraded.to_dict()) == \
            json.dumps(serial.to_dict())
        for key in ("analysis.summaries.iterations",
                    "analysis.executor.solved_functions"):
            assert par.counters[key] == ser.counters[key]

    def test_counter_totals_identical_across_jobs(self):
        totals = []
        keys = ("analysis.summaries.iterations",
                "analysis.executor.solved_functions",
                "analysis.executor.cached_functions")
        for jobs in (1, 4):
            with obs.collecting() as col:
                analyze(JOBS_SRC, name="jobs.rs",
                        config=AnalysisConfig(jobs=jobs))
            totals.append({k: col.counters.get(k, 0) for k in keys})
        assert totals[0] == totals[1]
        assert totals[0]["analysis.executor.solved_functions"] > 0

    def test_worker_spans_fold_under_wave(self):
        if not _pool_available():
            pytest.skip("no process pool on this host")
        with obs.collecting() as col:
            analyze(JOBS_SRC, name="jobs.rs",
                    config=AnalysisConfig(jobs=2))
        by_id = {s.id: s for s in col.iter_spans()}
        workers = [s for s in col.iter_spans()
                   if s.pid != os.getpid()]
        assert workers, "no worker spans folded back"
        for span in workers:
            node = span
            while node.parent_id is not None \
                    and node.name != "analysis.wave":
                node = by_id[node.parent_id]
            assert node.name == "analysis.wave"
            assert node.pid == os.getpid()
        # Serialisation overhead was measured on the way.
        assert col.counters["executor.tasks"] >= 1
        assert col.counters["executor.pickle_bytes"] > 0
        assert col.histograms["executor.pickle_seconds"].count >= 2

    def test_cache_read_cost_counters(self, tmp_path):
        config = AnalysisConfig(cache_dir=str(tmp_path))
        analyze(EDIT_BASE, name="edit.rs", config=config)
        with obs.collecting() as warm:
            analyze(EDIT_BASE, name="edit.rs", config=config)
        assert warm.counters["cache.read_bytes"] > 0
        assert warm.counters["cache.deserialize_seconds"] >= 0.0
        hist = warm.histograms["cache.deserialize_seconds"]
        # One deserialize per *shard*, not per component: that is the
        # point of the wave-sharded layout.
        assert hist.count == warm.counters["analysis.cache.shard_read"]
        assert hist.count <= warm.counters["analysis.cache.hit"]


class TestExecutorBackends:
    """The three executor backends are interchangeable up to wall time:
    findings must be byte-identical across all of them at any jobs
    count, and every backend must degrade to the in-process path."""

    BACKENDS = ("process", "persistent", "thread")

    def test_findings_identical_across_backends(self):
        serial = analyze(JOBS_SRC, name="jobs.rs",
                         config=AnalysisConfig(jobs=1))
        expected = json.dumps(serial.to_dict(), sort_keys=False)
        for backend in self.BACKENDS:
            for jobs in (2, 4):
                report = analyze(JOBS_SRC, name="jobs.rs",
                                 config=AnalysisConfig(
                                     jobs=jobs,
                                     executor_backend=backend))
                got = json.dumps(report.to_dict(), sort_keys=False)
                assert got == expected, (backend, jobs)

    def test_thread_backend_counters_match_serial(self):
        keys = ("analysis.summaries.iterations",
                "analysis.executor.solved_functions")
        with obs.collecting() as ser:
            analyze(JOBS_SRC, name="jobs.rs", config=AnalysisConfig(jobs=1))
        with obs.collecting() as thr:
            analyze(JOBS_SRC, name="jobs.rs",
                    config=AnalysisConfig(jobs=4,
                                          executor_backend="thread"))
        for key in keys:
            assert thr.counters[key] == ser.counters[key]

    def test_thread_backend_session_fanout_preserves_order(self):
        sources = [(f"file{i}.rs", JOBS_SRC) for i in range(4)]
        expected = [analyze(text, name=name).to_dict()
                    for name, text in sources]
        config = AnalysisConfig(jobs=4, executor_backend="thread")
        with AnalysisSession(config) as session:
            reports = session.analyze_sources(sources)
        assert [r.to_dict() for r in reports] == expected

    def test_persistent_backend_falls_back_in_process(self, monkeypatch):
        import repro.analysis.executor as executor_mod
        monkeypatch.setattr(executor_mod, "create_pool",
                            lambda jobs, **kwargs: None)
        degraded = analyze(JOBS_SRC, name="jobs.rs",
                           config=AnalysisConfig(
                               jobs=4, executor_backend="persistent"))
        serial = analyze(JOBS_SRC, name="jobs.rs",
                         config=AnalysisConfig(jobs=1))
        assert json.dumps(degraded.to_dict()) == \
            json.dumps(serial.to_dict())

    def test_persistent_backend_ships_program_once(self):
        if not _pool_available():
            pytest.skip("no process pool on this host")
        with obs.collecting() as proc:
            analyze(JOBS_SRC, name="jobs.rs",
                    config=AnalysisConfig(jobs=2,
                                          executor_backend="process"))
        with obs.collecting() as pers:
            analyze(JOBS_SRC, name="jobs.rs",
                    config=AnalysisConfig(jobs=2,
                                          executor_backend="persistent"))
        # Per-task payloads exclude the compiled program, so the
        # persistent backend pickles strictly less per task even after
        # paying the one-time program shipment.
        assert pers.counters["executor.pickle_bytes"] < \
            proc.counters["executor.pickle_bytes"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="executor_backend"):
            AnalysisConfig(executor_backend="bogus")


class TestComponentCallees:
    def test_external_callees_only(self):
        program, graph = graph_of(CHAIN_SRC)
        callees = component_callees(["mid"], graph, program)
        assert callees == {"leaf"}
        assert component_callees(["leaf"], graph, program) == set()
