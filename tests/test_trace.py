"""Tests for the timeline exporters (Chrome-trace / Perfetto JSON and
folded flamegraph stacks) and the ``--trace-out`` CLI acceptance path:
a ``--jobs 2`` run must produce a valid trace whose worker spans are
re-parented under the owning ``analysis.wave`` spans."""

import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.corpus.inject import BUG_TEMPLATES
from repro.obs.core import Collector
from repro.obs.flame import folded_stacks, write_folded
from repro.obs.trace import to_chrome_trace, trace_events, write_chrome_trace


def _pool_available() -> bool:
    """Whether this host can actually give us worker processes."""
    import warnings

    from repro.analysis.executor import create_pool
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        pool = create_pool(2)
    if pool is None:
        return False
    pool.shutdown(wait=True)
    return True


class TestChromeTrace:
    def test_event_shape_and_timestamp_normalisation(self):
        col = Collector("t")
        with col.span("outer", file="x"):
            with col.span("inner"):
                sum(range(1000))
        events = trace_events(col)
        ms = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in ms} == {"process_name", "thread_name"}
        process_lane = next(e for e in ms if e["name"] == "process_name")
        assert process_lane["pid"] == os.getpid()
        assert process_lane["args"]["name"] == "main"
        assert [e["name"] for e in xs] == ["outer", "inner"]
        outer, inner = xs
        # Timestamps are µs relative to the earliest span.
        assert outer["ts"] == 0.0
        assert inner["ts"] >= 0.0
        assert outer["dur"] >= inner["dur"] >= 0.0
        assert outer["args"]["parent"] is None
        assert inner["args"]["parent"] == outer["args"]["id"]
        assert outer["args"]["file"] == "x"
        assert all(e["pid"] == os.getpid() and e["tid"] for e in xs)

    def test_empty_collector_exports_no_events(self):
        assert trace_events(Collector("t")) == []

    def test_open_span_exports_zero_duration(self):
        col = Collector("t")
        handle = col.span("never-closed")
        handle.__enter__()
        (event,) = [e for e in trace_events(col) if e["ph"] == "X"]
        assert event["dur"] == 0.0

    def test_payload_is_json_serialisable(self, tmp_path):
        col = Collector("rt")
        with col.span("phase", detail=frozenset({"a"})):
            col.count("n", 2)
        payload = to_chrome_trace(col)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["collector"] == "rt"
        assert payload["otherData"]["counters"] == {"n": 2}
        json.dumps(payload)        # non-JSON attrs went through jsonable()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(col, str(path))
        assert json.loads(path.read_text()) == \
            json.loads(json.dumps(written))


class TestFoldedStacks:
    def test_paths_aggregate_with_self_time_weights(self):
        col = Collector("t")
        for _ in range(3):
            with col.span("a"):
                with col.span("b"):
                    sum(range(1000))
        lines = folded_stacks(col)
        by_stack = dict(line.rsplit(" ", 1) for line in lines)
        # Three identical a;b paths fold into one line each.
        assert set(by_stack) == {"a", "a;b"}
        assert int(by_stack["a;b"]) >= 0
        assert int(by_stack["a"]) >= 0

    def test_frame_names_sanitised(self):
        col = Collector("t")
        with col.span("semi;colon name"):
            pass
        (line,) = folded_stacks(col)
        assert line.startswith("semi:colon_name ")

    def test_adopted_worker_subtree_gets_lane_frame(self):
        worker = Collector("w")
        with worker.span("analysis.scc"):
            pass
        for span in worker.iter_spans():
            span.pid = 99999
        col = Collector("m")
        with col.span("analysis.wave"):
            col.adopt_spans(list(worker.roots))
        lines = folded_stacks(col)
        assert any(
            line.startswith("analysis.wave;worker-99999;analysis.scc ")
            for line in lines)

    def test_write_folded(self, tmp_path):
        col = Collector("t")
        with col.span("p"):
            pass
        path = tmp_path / "out.folded"
        lines = write_folded(col, str(path))
        assert path.read_text().splitlines() == lines


# Every race template in one program: enough components per wave that a
# --jobs 2 run actually fans out to worker processes.
RACE_CORPUS_SRC = "\n\n".join(
    BUG_TEMPLATES[name].render(f"t{i}")
    for i, name in enumerate(sorted(BUG_TEMPLATES))
    if name.startswith("race_"))


class TestTraceOutCli:
    """ISSUE acceptance: ``minirust check --trace-out --jobs 2`` on the
    race corpus emits valid Chrome-trace JSON whose worker spans are
    re-parented under wave spans."""

    def test_check_jobs2_trace_reparents_worker_spans(self, tmp_path):
        if not _pool_available():
            pytest.skip("no process pool on this host")
        src = tmp_path / "races.mr"
        src.write_text(RACE_CORPUS_SRC)
        out = tmp_path / "trace.json"
        code = main(["check", str(src), "--jobs", "2",
                     "--trace-out", str(out)])
        assert code == 1                      # the races are found
        assert obs.get_collector() is None    # CLI uninstalled cleanly

        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        ms = [e for e in events if e["ph"] == "M"]
        main_pid = os.getpid()

        # Metadata lanes name the main process and each worker.
        lanes = {e["pid"]: e["args"]["name"]
                 for e in ms if e["name"] == "process_name"}
        assert lanes[main_pid] == "main"
        worker_pids = {pid for pid in lanes if pid != main_pid}
        assert worker_pids, "no worker process lanes in the trace"
        assert all(lanes[pid] == f"worker-{pid}" for pid in worker_pids)

        # Span ids are unique; every parent link resolves.
        by_id = {e["args"]["id"]: e for e in xs}
        assert len(by_id) == len(xs)
        for e in xs:
            parent = e["args"]["parent"]
            assert parent is None or parent in by_id

        waves = [e for e in xs if e["name"] == "analysis.wave"]
        assert waves
        workers = [e for e in xs if e["pid"] != main_pid]
        assert workers, "worker spans did not fold back into the trace"

        # Every worker span's parent chain passes through an
        # analysis.wave span recorded in the main process.
        for e in workers:
            chain = []
            parent = e["args"]["parent"]
            while parent is not None:
                pe = by_id[parent]
                chain.append(pe)
                parent = pe["args"]["parent"]
            wave_hops = [pe for pe in chain
                         if pe["name"] == "analysis.wave"]
            assert wave_hops, \
                f"worker span {e['name']} not under an analysis.wave"
            assert all(pe["pid"] == main_pid for pe in wave_hops)

    def test_flame_out_cli(self, tmp_path):
        src = tmp_path / "one.mr"
        src.write_text("fn main() { print(1); }")
        out = tmp_path / "prof.folded"
        code = main(["check", str(src), "--flame-out", str(out)])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) >= 0
        assert any(stack.startswith("compile") for stack in lines)
