"""Detector tests: every detector on positive and negative cases, plus
the paper's figure patterns end-to-end."""

from conftest import check, detectors_named


class TestUseAfterFree:
    def test_drop_then_deref(self):
        report = check("""
            fn main() {
                let v = vec![1, 2, 3];
                let p = v.as_ptr();
                drop(v);
                unsafe { let x = *p; }
            }""")
        assert detectors_named(report, "use-after-free")

    def test_deref_before_drop_clean(self):
        report = check("""
            fn main() {
                let v = vec![1, 2, 3];
                let p = v.as_ptr();
                unsafe { let x = *p; }
                drop(v);
            }""")
        assert not detectors_named(report, "use-after-free")

    def test_dangling_scoped_pointer(self):
        report = check("""
            fn main() {
                let p = {
                    let x = 5;
                    &x as *const i32
                };
                unsafe { let y = *p; }
            }""")
        assert detectors_named(report, "use-after-free")

    def test_figure7_escape_to_ffi(self):
        report = check("""
            struct BioSlice { v: i32 }
            impl BioSlice {
                fn new(data: i32) -> BioSlice { BioSlice { v: data } }
                fn as_ptr(&self) -> *const BioSlice {
                    &self.v as *const i32 as *const BioSlice
                }
            }
            fn sign(data: Option<i32>) {
                let p = match data {
                    Some(d) => BioSlice::new(d).as_ptr(),
                    None => ptr::null_mut(),
                };
                unsafe { let cms = CMS_sign(p); }
            }""")
        assert detectors_named(report, "use-after-free")

    def test_figure7_fixed_clean(self):
        report = check("""
            struct BioSlice { v: i32 }
            impl BioSlice {
                fn new(data: i32) -> BioSlice { BioSlice { v: data } }
                fn as_ptr(&self) -> *const BioSlice {
                    &self.v as *const i32 as *const BioSlice
                }
            }
            fn sign(data: Option<i32>) {
                let bio = match data {
                    Some(d) => Some(BioSlice::new(d)),
                    None => None,
                };
                let p = bio.map_or(ptr::null_mut(), |b| b.as_ptr());
                unsafe { let cms = CMS_sign(p); }
            }""")
        assert not detectors_named(report, "use-after-free")

    def test_pointer_to_live_arg_clean(self):
        report = check("""
            fn f(v: &Vec<i32>) {
                let p = v.as_ptr();
                unsafe { let x = *p; }
            }""")
        assert not detectors_named(report, "use-after-free")


class TestDoubleLock:
    def test_figure8(self):
        report = check("""
            struct Inner { m: i32 }
            fn connect(m: i32) -> Result<i32, i32> { Ok(m) }
            fn do_request(client: &RwLock<Inner>) {
                match connect(client.read().unwrap().m) {
                    Ok(x) => {
                        let mut inner = client.write().unwrap();
                        inner.m = x;
                    }
                    Err(e) => {}
                };
            }""")
        findings = detectors_named(report, "double-lock")
        assert findings
        assert not findings[0].metadata["interprocedural"]

    def test_figure8_fixed_clean(self):
        report = check("""
            struct Inner { m: i32 }
            fn connect(m: i32) -> Result<i32, i32> { Ok(m) }
            fn do_request(client: &RwLock<Inner>) {
                let result = connect(client.read().unwrap().m);
                match result {
                    Ok(x) => {
                        let mut inner = client.write().unwrap();
                        inner.m = x;
                    }
                    Err(e) => {}
                };
            }""")
        assert not detectors_named(report, "double-lock")

    def test_sequential_locks_clean(self):
        report = check("""
            fn f(m: &Mutex<i32>) {
                let a = {
                    let g = m.lock().unwrap();
                    *g
                };
                let b = {
                    let g = m.lock().unwrap();
                    *g
                };
                print(a + b);
            }""")
        assert not detectors_named(report, "double-lock")

    def test_read_read_allowed(self):
        report = check("""
            fn f(l: &RwLock<i32>) {
                let a = l.read().unwrap();
                let b = l.read().unwrap();
                print(*a + *b);
            }""")
        assert not detectors_named(report, "double-lock")

    def test_read_write_conflicts(self):
        report = check("""
            fn f(l: &RwLock<i32>) {
                let a = l.read().unwrap();
                let mut b = l.write().unwrap();
                *b = *a;
            }""")
        assert detectors_named(report, "double-lock")

    def test_interprocedural(self):
        report = check("""
            fn helper(m: &Mutex<i32>) -> i32 {
                let g = m.lock().unwrap();
                *g
            }
            fn outer(m: &Mutex<i32>) {
                let g = m.lock().unwrap();
                let v = helper(m);
                print(v + *g);
            }""")
        findings = detectors_named(report, "double-lock")
        assert findings
        assert any(f.metadata.get("interprocedural") for f in findings)

    def test_interprocedural_different_lock_clean(self):
        report = check("""
            fn helper(m: &Mutex<i32>) -> i32 {
                let g = m.lock().unwrap();
                *g
            }
            fn outer(a: &Mutex<i32>, b: &Mutex<i32>) {
                let g = a.lock().unwrap();
                let v = helper(b);
                print(v + *g);
            }""")
        assert not detectors_named(report, "double-lock")

    def test_try_lock_not_flagged(self):
        report = check("""
            fn f(m: &Mutex<i32>) {
                let g = m.lock().unwrap();
                let t = m.try_lock();
                print(*g);
            }""")
        assert not detectors_named(report, "double-lock")

    def test_explicit_drop_ends_region(self):
        report = check("""
            fn f(m: &Mutex<i32>) {
                let g = m.lock().unwrap();
                drop(g);
                let h = m.lock().unwrap();
                print(*h);
            }""")
        assert not detectors_named(report, "double-lock")

    def test_if_let_scrutinee_guard(self):
        report = check("""
            fn f(m: &Mutex<i32>) {
                if let Ok(g) = m.lock() {
                    let h = m.lock().unwrap();
                    print(*g + *h);
                }
            }""")
        assert detectors_named(report, "double-lock")


class TestLockOrder:
    def test_abba_cycle(self):
        report = check("""
            static A: Mutex<i32> = Mutex::new(0);
            static B: Mutex<i32> = Mutex::new(0);
            fn first() {
                let a = A.lock().unwrap();
                let b = B.lock().unwrap();
                print(*a + *b);
            }
            fn second() {
                let b = B.lock().unwrap();
                let a = A.lock().unwrap();
                print(*a + *b);
            }""")
        assert detectors_named(report, "lock-order")

    def test_consistent_order_clean(self):
        report = check("""
            static A: Mutex<i32> = Mutex::new(0);
            static B: Mutex<i32> = Mutex::new(0);
            fn first() {
                let a = A.lock().unwrap();
                let b = B.lock().unwrap();
                print(*a + *b);
            }
            fn second() {
                let a = A.lock().unwrap();
                let b = B.lock().unwrap();
                print(*a + *b);
            }""")
        assert not detectors_named(report, "lock-order")


class TestMemoryMisc:
    def test_double_free_ptr_read(self):
        report = check("""
            fn dup(v: Vec<i32>) {
                let t1 = v;
                unsafe {
                    let t2 = ptr::read(&t1);
                    drop(t2);
                }
            }""")
        assert detectors_named(report, "double-free")

    def test_ptr_read_with_forget_clean(self):
        report = check("""
            fn dup(v: Vec<i32>) {
                let t1 = v;
                unsafe {
                    let t2 = ptr::read(&t1);
                    mem::forget(t1);
                    drop(t2);
                }
            }""")
        assert not detectors_named(report, "double-free")

    def test_figure6_invalid_free(self):
        report = check("""
            struct FILE { buf: Vec<u8> }
            unsafe fn _fdopen() {
                let f = alloc(100) as *mut FILE;
                *f = FILE { buf: vec![0u8; 100] };
            }""")
        assert detectors_named(report, "invalid-free")

    def test_figure6_fixed_with_ptr_write(self):
        report = check("""
            struct FILE { buf: Vec<u8> }
            unsafe fn _fdopen() {
                let f = alloc(100) as *mut FILE;
                ptr::write(f, FILE { buf: vec![0u8; 100] });
            }""")
        assert not detectors_named(report, "invalid-free")

    def test_uninit_read(self):
        report = check("""
            unsafe fn f() -> i32 {
                let p = alloc(16) as *mut i32;
                let v = *p;
                v
            }""")
        assert detectors_named(report, "uninit-read")

    def test_written_alloc_clean(self):
        report = check("""
            unsafe fn f() -> i32 {
                let p = alloc(16) as *mut i32;
                ptr::write(p, 7);
                let v = *p;
                v
            }""")
        assert not detectors_named(report, "uninit-read")


class TestBufferOverflow:
    def test_constant_oob(self):
        report = check("""
            fn f() -> u8 {
                let v = vec![0u8; 8];
                unsafe { *v.get_unchecked(9) }
            }""")
        findings = detectors_named(report, "buffer-overflow")
        assert any(f.metadata.get("definite") for f in findings)

    def test_in_bounds_clean(self):
        report = check("""
            fn f() -> u8 {
                let v = vec![0u8; 8];
                unsafe { *v.get_unchecked(3) }
            }""")
        assert not [f for f in detectors_named(report, "buffer-overflow")
                    if f.metadata.get("definite")]

    def test_unguarded_dynamic_index_warns(self):
        report = check("""
            fn f(i: usize) -> u8 {
                let v = vec![0u8; 8];
                unsafe { *v.get_unchecked(i) }
            }""")
        assert detectors_named(report, "buffer-overflow")

    def test_guarded_dynamic_index_clean(self):
        report = check("""
            fn f(i: usize) -> u8 {
                let v = vec![0u8; 8];
                if i < v.len() {
                    unsafe { return *v.get_unchecked(i); }
                }
                0
            }""")
        assert not detectors_named(report, "buffer-overflow")


class TestConcurrencyMisc:
    def test_condvar_without_notify(self):
        report = check("""
            fn main() {
                let m = Mutex::new(false);
                let cv = Condvar::new();
                let g = m.lock().unwrap();
                let g2 = cv.wait(g).unwrap();
            }""")
        assert detectors_named(report, "condvar")

    def test_condvar_with_notify_clean(self):
        report = check("""
            fn waiter(m: &Mutex<bool>, cv: &Condvar) {
                let g = m.lock().unwrap();
                let g2 = cv.wait(g).unwrap();
            }
            fn signaller(cv: &Condvar) {
                cv.notify_all();
            }""")
        assert not detectors_named(report, "condvar")

    def test_recv_no_sender(self):
        report = check("""
            fn main() {
                let (tx, rx) = channel();
                drop(tx);
                let v = rx.recv();
            }""")
        assert detectors_named(report, "channel")

    def test_channel_with_sender_clean(self):
        report = check("""
            fn main() {
                let (tx, rx) = channel();
                tx.send(1);
                let v = rx.recv();
            }""")
        assert not detectors_named(report, "channel")

    def test_once_recursion(self):
        report = check("""
            static INIT: Once = Once::new();
            fn main() {
                INIT.call_once(|| {
                    INIT.call_once(|| { print(1); });
                });
            }""")
        assert detectors_named(report, "once-recursion")

    def test_once_simple_clean(self):
        report = check("""
            static INIT: Once = Once::new();
            fn main() {
                INIT.call_once(|| { print(1); });
            }""")
        assert not detectors_named(report, "once-recursion")


class TestInteriorMutability:
    def test_figure9_check_then_act(self):
        report = check("""
            struct AuthorityRound { proposed: AtomicBool }
            unsafe impl Sync for AuthorityRound {}
            impl AuthorityRound {
                fn generate_seal(&self) -> i32 {
                    if self.proposed.load() { return 0; }
                    self.proposed.store(true);
                    return 1;
                }
            }""")
        assert detectors_named(report, "atomicity-violation")

    def test_figure9_fixed_with_cas(self):
        report = check("""
            struct AuthorityRound { proposed: AtomicBool }
            unsafe impl Sync for AuthorityRound {}
            impl AuthorityRound {
                fn generate_seal(&self) -> i32 {
                    if !self.proposed.compare_and_swap(false, true) {
                        return 1;
                    }
                    return 0;
                }
            }""")
        assert not detectors_named(report, "atomicity-violation")

    def test_figure4_unsync_write(self):
        report = check("""
            struct TestCell { value: i32 }
            unsafe impl Sync for TestCell {}
            impl TestCell {
                fn set(&self, i: i32) {
                    let p = &self.value as *const i32 as *mut i32;
                    unsafe { *p = i; }
                }
            }""")
        assert detectors_named(report, "sync-unsync-write")

    def test_locked_write_clean(self):
        report = check("""
            struct Locked { value: Mutex<i32> }
            unsafe impl Sync for Locked {}
            impl Locked {
                fn set(&self, i: i32) {
                    let mut g = self.value.lock().unwrap();
                    *g = i;
                }
            }""")
        assert not detectors_named(report, "sync-unsync-write")

    def test_non_shared_struct_clean(self):
        report = check("""
            struct Private { value: i32 }
            impl Private {
                fn set(&self, i: i32) {
                    let p = &self.value as *const i32 as *mut i32;
                    unsafe { *p = i; }
                }
            }""")
        assert not detectors_named(report, "sync-unsync-write")


class TestReportApi:
    def test_dedup(self):
        report = check("""
            fn main() {
                let v = vec![1];
                let p = v.as_ptr();
                drop(v);
                unsafe { let x = *p; }
            }""")
        deduped = report.dedup()
        keys = [f.dedup_key() for f in deduped.findings]
        assert len(keys) == len(set(keys))

    def test_counts(self):
        report = check("""
            fn main() {
                let v = vec![1];
                let p = v.as_ptr();
                drop(v);
                unsafe { let x = *p; }
            }""")
        counts = report.counts()
        assert counts.get("use-after-free", 0) >= 1

    def test_render_mentions_location(self):
        report = check("""
            fn main() {
                let v = vec![1];
                let p = v.as_ptr();
                drop(v);
                unsafe { let x = *p; }
            }""")
        assert "use-after-free" in report.render()


class TestNullDeref:
    def test_definite_null_write(self):
        report = check("""
            fn main() {
                let p: *mut i32 = ptr::null_mut();
                unsafe { *p = 5; }
            }""")
        findings = detectors_named(report, "null-deref")
        assert findings and findings[0].metadata["definite"]

    def test_guarded_with_is_null_clean(self):
        report = check("""
            fn main() {
                let p: *mut i32 = ptr::null_mut();
                unsafe {
                    if !p.is_null() {
                        *p = 5;
                    }
                }
            }""")
        assert not detectors_named(report, "null-deref")

    def test_interprocedural_null_return(self):
        report = check("""
            fn lookup(found: bool) -> *mut i32 {
                ptr::null_mut()
            }
            fn main() {
                let p = lookup(false);
                unsafe { *p = 5; }
            }""")
        assert detectors_named(report, "null-deref")

    def test_possibly_null_is_warning(self):
        report = check("""
            fn main() {
                let x = 1;
                let good = &x as *const i32;
                let p = if x > 0 { good } else { ptr::null() };
                unsafe { let y = *p; }
            }""")
        findings = detectors_named(report, "null-deref")
        assert findings
        assert not findings[0].metadata["definite"]

    def test_valid_pointer_clean(self):
        report = check("""
            fn main() {
                let x = 1;
                let p = &x as *const i32;
                unsafe { let y = *p; }
            }""")
        assert not detectors_named(report, "null-deref")


class TestDanglingReturn:
    def test_return_pointer_to_local(self):
        report = check("""
            fn make() -> *const i32 {
                let x = 5;
                &x as *const i32
            }""")
        assert detectors_named(report, "dangling-return")

    def test_return_pointer_into_arg_clean(self):
        report = check("""
            fn passthrough(v: &Vec<i32>) -> *const i32 {
                v.as_ptr()
            }""")
        assert not detectors_named(report, "dangling-return")

    def test_return_heap_pointer_clean(self):
        report = check("""
            fn make() -> *mut u8 {
                unsafe { alloc(8) }
            }""")
        assert not detectors_named(report, "dangling-return")

    def test_non_pointer_return_ignored(self):
        report = check("fn f() -> i32 { let x = 5; x }")
        assert not detectors_named(report, "dangling-return")


class TestDataRace:
    def _race_findings(self, template_name):
        from repro.corpus.inject import BUG_TEMPLATES
        report = check(BUG_TEMPLATES[template_name].render("X"))
        return detectors_named(report, "data-race")

    def _assert_provenance(self, finding):
        kinds = [f["kind"] for f in finding.provenance]
        assert "lockset" in kinds
        assert "summary-chain" in kinds
        assert "thread-escape" in kinds

    def test_race_unsync_counter_template(self):
        findings = self._race_findings("race_unsync_counter")
        assert findings, "unsynchronised cross-thread writes must be flagged"
        self._assert_provenance(findings[0])
        # The write goes through the helper: summary-chain is real.
        chain = next(f for f in findings[0].provenance
                     if f["kind"] == "summary-chain")
        assert len(chain["chain"]) > 1

    def test_race_arc_interior_mut_template(self):
        findings = self._race_findings("race_arc_interior_mut")
        assert findings
        self._assert_provenance(findings[0])

    def test_race_lock_wrong_mutex_template(self):
        findings = self._race_findings("race_lock_wrong_mutex")
        assert findings
        self._assert_provenance(findings[0])
        lockset = next(f for f in findings[0].provenance
                       if f["kind"] == "lockset")
        assert lockset["first"] and lockset["second"], \
            "both sides hold locks — just not a common one"

    def test_lock_protected_negative(self):
        from repro.corpus.benign import BENIGN_TEMPLATES
        report = check(BENIGN_TEMPLATES["locked_shared"]("X"))
        assert not report.findings

    def test_protection_through_helper_function(self):
        # The lock is acquired *inside* the helper; only the summary
        # engine's transitive lock effects make the write look protected.
        report = check("""
            struct G { m: Mutex<i32>, data: i32 }
            unsafe impl Sync for G {}
            fn locked_bump(s: &G, i: i32) {
                let g = s.m.lock().unwrap();
                let p = &s.data as *const i32 as *mut i32;
                unsafe { *p = *p + i; }
                drop(g);
            }
            fn main() {
                let s = Arc::new(G { m: Mutex::new(0), data: 0 });
                let s2 = Arc::clone(&s);
                let h = thread::spawn(move || { locked_bump(&s2, 1); });
                locked_bump(&s, 2);
                h.join();
            }""")
        assert not detectors_named(report, "data-race")

    def test_one_side_unlocked_race(self):
        report = check("""
            struct G { m: Mutex<i32>, data: i32 }
            unsafe impl Sync for G {}
            fn bump(s: &G, i: i32) {
                let p = &s.data as *const i32 as *mut i32;
                unsafe { *p = *p + i; }
            }
            fn main() {
                let s = Arc::new(G { m: Mutex::new(0), data: 0 });
                let s2 = Arc::clone(&s);
                let h = thread::spawn(move || {
                    let g = s2.m.lock().unwrap();
                    bump(&s2, 1);
                    drop(g);
                });
                bump(&s, 2);
                h.join();
            }""")
        assert detectors_named(report, "data-race")

    def test_guard_deref_writes_invisible(self):
        # Mutex<i32> used properly: writes through the guard are
        # structurally protected and produce nothing.
        report = check("""
            fn main() {
                let m = Arc::new(Mutex::new(0));
                let m2 = Arc::clone(&m);
                let h = thread::spawn(move || {
                    let mut g = m2.lock().unwrap();
                    *g += 1;
                });
                let mut g = m.lock().unwrap();
                *g += 1;
                drop(g);
                h.join();
            }""")
        assert not detectors_named(report, "data-race")

    def test_access_before_spawn_not_concurrent(self):
        report = check("""
            struct C { value: i32 }
            unsafe impl Sync for C {}
            fn touch(c: &C, i: i32) {
                let p = &c.value as *const i32 as *mut i32;
                unsafe { *p = i; }
            }
            fn main() {
                let c = Arc::new(C { value: 0 });
                let c2 = Arc::clone(&c);
                touch(&c, 2);
                let h = thread::spawn(move || { touch(&c2, 1); });
                h.join();
            }""")
        assert not detectors_named(report, "data-race")

    def test_no_spawn_no_findings(self):
        report = check("""
            struct C { value: i32 }
            unsafe impl Sync for C {}
            fn touch(c: &C, i: i32) {
                let p = &c.value as *const i32 as *mut i32;
                unsafe { *p = i; }
            }
            fn main() {
                let c = Arc::new(C { value: 0 });
                touch(&c, 1);
                touch(&c, 2);
            }""")
        assert not detectors_named(report, "data-race")

    def test_two_spawned_threads_race(self):
        report = check("""
            struct C { value: i32 }
            unsafe impl Sync for C {}
            fn touch(c: &C, i: i32) {
                let p = &c.value as *const i32 as *mut i32;
                unsafe { *p = i; }
            }
            fn main() {
                let c = Arc::new(C { value: 0 });
                let a = Arc::clone(&c);
                let b = Arc::clone(&c);
                let h1 = thread::spawn(move || { touch(&a, 1); });
                let h2 = thread::spawn(move || { touch(&b, 2); });
                h1.join();
                h2.join();
            }""")
        assert detectors_named(report, "data-race")
